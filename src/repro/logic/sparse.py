"""Level-4 sparse model sets: density-proportional engine at any alphabet size.

The three table tiers (big-int ≤ ``_TABLE_MAX_LETTERS``, sharded ≤
``shards.SHARD_MAX_LETTERS``, SAT + per-model mask loops beyond) all pay for
the *alphabet*: a truth table materialises all ``2^n`` positions even when a
knowledge base has a few thousand models.  This module stores only the
models themselves — the carrier is a **sorted, deduplicated array of model
masks** — so every operation costs work proportional to the model count
(*density*), never to ``2^n``.  That is what lifts the sharded tier's
letter cutoff for bounded-density workloads: a 40-letter KB with 500
admissible states is a 500-row array here, where the sharded tier would
need a 2^40-bit bitplane it cannot even allocate.

Two storage backends, mirroring :mod:`repro.logic.shards`:

* **numpy backend** — masks live in a ``(models, words)`` ``uint64``
  column-block array (one column per 64 letters; a single column up to 64
  letters).  Rows are sorted ascending as integers and unique.  The hot
  kernels — XOR pair matrices, popcount rings, antichain min⊆/max⊆
  sweeps, Hamming-distance minima — are vectorised over the rows and
  blocked by a pair budget, and the per-T-model fan-out of the pointwise
  operators maps over a thread pool (the bitwise kernels release the GIL);
* **pure-int backend** — a sorted tuple of Python ints (arbitrary
  alphabet width), every kernel a per-model loop, with the pointwise
  fan-out mapped over a ``multiprocessing`` pool.

**Spill path.**  Selections (pointwise minimal/ring, Dalal's nearest set,
Weber's confined set) return subsets of their inputs and can never grow,
but *unions* can: translate-unions behind ``delta``/Satoh, Weber's
Ω-closure, Hamming-ball growth.  Whenever an intermediate result would
exceed the live model budget (``shards.SPARSE_MAX_MODELS``, env
``REPRO_SPARSE_MAX_MODELS``) the operation raises :class:`SparseSpill` and
the caller — see :meth:`repro.revision.model_based.ModelBasedOperator.
_select_bits` — reruns the selection on the densest tier still available:
the bitplanes when the alphabet fits their cutoffs, the SAT tier's
mask-list loops beyond.  Either way the result is identical; only the
cost model changes.

Worker count for the pointwise fan-out comes from the same
``REPRO_PARALLEL`` knob as the sharded tier (threads on numpy, processes
on pure-int); results are bit-identical for any worker count because the
only cross-model combine is a union, which commutes.

Tier placement is decided by :func:`repro.logic.shards.tier` — pass it a
model-count bound and alphabets beyond the shard cutoff dispatch here
instead of to the SAT tier (see the four-tier table there).
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro import runtime as _runtime
from repro.runtime import pool as _pool

from . import shards as _shards
from .bitmodels import BitAlphabet, min_subset_masks, max_subset_masks

try:  # pragma: no cover - exercised via the CI matrix leg without numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):  # force the pure-int fallback
    _np = None

#: Width of one column block (machine word) in the numpy carrier.
WORD_BITS = 64

#: Entry budget for one blocked pair kernel (XOR/popcount matrices): T-model
#: chunks are sized so ``chunk * |P| * words`` stays under this.
_PAIR_BUDGET = 1 << 22


class SparseSpill(RuntimeError):
    """An intermediate sparse result exceeded the live model budget.

    Raised by the union-shaped operations (translate-union, Ω-closure,
    Hamming-ball growth, :meth:`SparseModelSet.__or__`) and by carrier
    construction when the model count crosses
    ``shards.SPARSE_MAX_MODELS``; callers rerun the selection on the
    densest bound-free tier still available (bitplanes within their
    cutoffs, the SAT mask loops beyond) — the result is identical.
    """


def max_models() -> int:
    """The live sparse model budget (``shards.SPARSE_MAX_MODELS``).

    Read at call time, like every other tier knob, so env overrides and
    runtime retargeting by tests and harnesses are always honoured.
    """
    return _shards.SPARSE_MAX_MODELS


def _guard(count: int, context: str) -> None:
    budget = max_models()
    if count > budget:
        raise SparseSpill(
            f"{context}: {count} models exceed the live sparse model "
            f"budget REPRO_SPARSE_MAX_MODELS={budget} "
            f"(shards.SPARSE_MAX_MODELS)"
        )


def _use_numpy(backend: Optional[str]) -> bool:
    # Deliberately local (not shards._use_numpy): each module's backend
    # choice follows its *own* ``_np``, which tests retarget independently
    # to force the pure-int fallback on one tier at a time.
    if backend is None:
        return _np is not None
    if backend == "numpy":
        if _np is None:
            raise RuntimeError("numpy backend requested but numpy is unavailable")
        return True
    if backend == "int":
        return False
    raise ValueError(f"unknown sparse backend {backend!r} (use 'numpy' or 'int')")


def _words_for(letter_count: int) -> int:
    return max(1, (letter_count + WORD_BITS - 1) // WORD_BITS)


#: Per-element popcount of a uint64 array — shared with the sharded tier
#: (one SWAR fallback to maintain, not two).
_popcounts = _shards._popcounts_array


def _ints_to_cols(masks: Sequence[int], words: int):
    """Pack python ints into a ``(len(masks), words)`` uint64 array."""
    if not masks:
        return _np.zeros((0, words), dtype=_np.uint64)
    data = b"".join(mask.to_bytes(words * 8, "little") for mask in masks)
    return _np.frombuffer(data, dtype="<u8").reshape(len(masks), words).astype(
        _np.uint64, copy=True
    )


def _cols_to_ints(cols) -> Tuple[int, ...]:
    """Unpack a column-block array into python ints, row order preserved."""
    if not len(cols):
        return ()
    data = _np.ascontiguousarray(cols).astype("<u8", copy=False).tobytes()
    step = cols.shape[1] * 8
    return tuple(
        int.from_bytes(data[i: i + step], "little")
        for i in range(0, len(data), step)
    )


def _canon_cols(cols):
    """Sort rows ascending as integers and drop duplicates."""
    if len(cols) <= 1:
        return _np.ascontiguousarray(cols)
    words = cols.shape[1]
    if words == 1:
        return _np.unique(cols.ravel()).reshape(-1, 1)
    # lexsort: the last key is primary, so feed columns least-significant
    # first — the most significant word ends up deciding the order.
    order = _np.lexsort(tuple(cols[:, j] for j in range(words)))
    cols = cols[order]
    keep = _np.ones(len(cols), dtype=bool)
    keep[1:] = _np.any(cols[1:] != cols[:-1], axis=1)
    return _np.ascontiguousarray(cols[keep])


class SparseModelSet:
    """An immutable sorted/deduplicated set of model masks over an alphabet.

    The Level-4 carrier: rows are the models themselves, so storage and
    work scale with the model count, not with ``2^n``.  Construction
    enforces the live sparse budget (:class:`SparseSpill` beyond it) —
    the tier dispatch only routes bounded-density sets here.
    """

    __slots__ = ("alphabet", "_cols", "_ints", "_pc")

    def __init__(self, alphabet, cols=None, ints=None):
        self.alphabet = BitAlphabet.coerce(alphabet)
        self._cols = cols
        self._ints: Optional[Tuple[int, ...]] = ints
        self._pc = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_masks(
        cls,
        alphabet,
        masks: Iterable[int],
        backend: Optional[str] = None,
    ) -> "SparseModelSet":
        """Build from an iterable of model masks (sorted + deduplicated).

        Raises :class:`SparseSpill` when the set exceeds the live budget
        and ``ValueError`` for masks outside the alphabet.
        """
        alphabet = BitAlphabet.coerce(alphabet)
        unique = sorted(set(masks))
        _guard(len(unique), "sparse carrier construction")
        universe = alphabet.universe
        if unique and (unique[0] < 0 or unique[-1] > universe):
            bad = next(m for m in unique if m < 0 or m > universe)
            raise ValueError(
                f"mask {bad:#x} outside the {len(alphabet)}-letter alphabet"
            )
        if _use_numpy(backend):
            return cls(alphabet, cols=_ints_to_cols(unique, _words_for(len(alphabet))))
        return cls(alphabet, ints=tuple(unique))

    @classmethod
    def empty(cls, alphabet, backend: Optional[str] = None) -> "SparseModelSet":
        return cls.from_masks(alphabet, (), backend)

    @classmethod
    def from_table(cls, table, backend: Optional[str] = None) -> "SparseModelSet":
        """Build from anything that streams set bits (a
        :class:`~repro.logic.shards.ShardedTable`, a
        :class:`~repro.logic.bitmodels.BitModelSet`, …)."""
        return cls.from_masks(table.alphabet, table.iter_set_bits(), backend)

    @classmethod
    def from_cubes(
        cls,
        alphabet,
        cubes: "Iterable[Tuple[int, Sequence[int]]]",
        backend: Optional[str] = None,
    ) -> "SparseModelSet":
        """Build the carrier straight from partial-model cubes.

        Each cube is ``(base_mask, free_bit_masks)`` — a fixed mask plus
        the single-bit masks of its don't-care letters — and expands to
        ``2^len(free)`` model rows by doubling (:func:`expand_cubes`),
        going directly into the carrier (uint64 column blocks on the
        numpy backend) with no per-model frozenset/Interpretation
        intermediates.  This is the emission path of the incremental
        AllSAT enumerator (:mod:`repro.sat.allsat`): a DNF-shaped KB
        lands here as one row block per cube.  Raises
        :class:`SparseSpill` as soon as the running expansion would cross
        the live budget — *before* a wide cube materialises (a 40-free-
        bit cube must spill, not fill memory).
        """
        return cls.from_masks(
            alphabet, expand_cubes(cubes, budget=max_models()), backend
        )

    @classmethod
    def from_payload(
        cls,
        alphabet,
        buffer,
        rows: int,
        backend: Optional[str] = None,
    ) -> "SparseModelSet":
        """Rebuild a carrier from its :meth:`payload_bytes` image.

        *buffer* is any buffer of ``rows * words * 8`` little-endian
        bytes — a ``memoryview`` over a checksummed store mmap keeps the
        numpy path **zero-copy**: the rows become a read-only ``<u8``
        view straight over the mapped pages, shared across forked
        workers.  That is safe because the carrier is immutable (no
        kernel writes into ``_cols``).  Geometry mismatches raise
        ``ValueError``; the bytes themselves are trusted — callers
        checksum first.
        """
        alphabet = BitAlphabet.coerce(alphabet)
        words = _words_for(len(alphabet))
        view = memoryview(buffer)
        if view.nbytes != rows * words * 8:
            raise ValueError(
                f"sparse payload is {view.nbytes} bytes, {rows} rows of "
                f"{words} words need {rows * words * 8}"
            )
        if _use_numpy(backend):
            cols = _np.frombuffer(view, dtype="<u8").reshape(rows, words)
            return cls(alphabet, cols=cols)
        step = words * 8
        data = view.tobytes()
        return cls(alphabet, ints=tuple(
            int.from_bytes(data[i: i + step], "little")
            for i in range(0, len(data), step)
        ))

    def payload_bytes(self) -> bytes:
        """The rows as little-endian 64-bit words, backend-independent.

        The image is identical whichever backend built the carrier, so a
        store written under numpy is read bit-for-bit by the pure-int
        fallback and vice versa.
        """
        if self._cols is not None:
            return _np.ascontiguousarray(self._cols).astype(
                "<u8", copy=False
            ).tobytes()
        step = _words_for(len(self.alphabet)) * 8
        return b"".join(
            mask.to_bytes(step, "little") for mask in (self._ints or ())
        )

    def _sibling(self, cols=None, ints=None) -> "SparseModelSet":
        return SparseModelSet(self.alphabet, cols=cols, ints=ints)

    # -- views --------------------------------------------------------------

    @property
    def backend(self) -> str:
        return "numpy" if self._cols is not None else "int"

    @property
    def words(self) -> int:
        """Column blocks per model (``ceil(n / 64)``)."""
        return _words_for(len(self.alphabet))

    def mask_list(self) -> Tuple[int, ...]:
        """The models as a sorted tuple of python ints (cached)."""
        if self._ints is None:
            self._ints = _cols_to_ints(self._cols)
        return self._ints

    def iter_masks(self) -> Iterator[int]:
        """Stream the model masks, ascending."""
        return iter(self.mask_list())

    iter_set_bits = iter_masks  # table-protocol alias (positions == masks)

    def count(self) -> int:
        if self._cols is not None:
            return len(self._cols)
        return len(self._ints)

    def __len__(self) -> int:
        return self.count()

    def any(self) -> bool:
        return self.count() > 0

    __bool__ = any

    def __iter__(self) -> Iterator[int]:
        return self.iter_masks()

    def __contains__(self, mask: object) -> bool:
        if not isinstance(mask, int):
            return False
        ints = self.mask_list()
        index = bisect_left(ints, mask)
        return index < len(ints) and ints[index] == mask

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseModelSet):
            return NotImplemented
        return (
            self.alphabet == other.alphabet
            and self.mask_list() == other.mask_list()
        )

    def __hash__(self) -> int:
        return hash((self.alphabet, self.mask_list()))

    def __repr__(self) -> str:
        return (
            f"SparseModelSet[{len(self.alphabet)} letters, {self.backend}]"
            f"({self.count()} models)"
        )

    # -- internals ----------------------------------------------------------

    def _require_cols(self):
        if self._cols is None:
            raise RuntimeError("numpy kernel invoked on a pure-int sparse set")
        return self._cols

    def _take(self, selector) -> "SparseModelSet":
        """Row subset by boolean selector — sorted order is preserved."""
        if self._cols is not None:
            return self._sibling(cols=_np.ascontiguousarray(self._cols[selector]))
        return self._sibling(
            ints=tuple(m for m, keep in zip(self._ints, selector) if keep)
        )

    def popcounts(self):
        """Per-model popcount (numpy: cached int64 array; int: list)."""
        if self._pc is None:
            if self._cols is not None:
                self._pc = _popcounts(self._cols).sum(axis=1).astype(_np.int64)
            else:
                self._pc = [m.bit_count() for m in self._ints]
        return self._pc

    def _mask_words(self, mask: int):
        """Split a mask into the per-column uint64 words."""
        words = self.words
        return _np.frombuffer(
            mask.to_bytes(words * 8, "little"), dtype="<u8"
        ).astype(_np.uint64)

    # -- set algebra ---------------------------------------------------------

    def _check_compatible(self, other: "SparseModelSet") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError("sparse model sets range over different alphabets")

    def __and__(self, other: "SparseModelSet") -> "SparseModelSet":
        self._check_compatible(other)
        if (
            self._cols is not None
            and other._cols is not None
            and self.words == 1
        ):
            both = _np.intersect1d(
                self._cols.ravel(), other._cols.ravel(), assume_unique=True
            )
            return self._sibling(cols=both.reshape(-1, 1))
        mine = set(self.mask_list())
        both = sorted(mine.intersection(other.mask_list()))
        if self._cols is not None:
            return self._sibling(cols=_ints_to_cols(both, self.words))
        return self._sibling(ints=tuple(both))

    def __or__(self, other: "SparseModelSet") -> "SparseModelSet":
        self._check_compatible(other)
        if (
            self._cols is not None
            and other._cols is not None
            and self.words == 1
        ):
            union = _np.union1d(self._cols.ravel(), other._cols.ravel())
            _guard(len(union), "sparse union")
            return self._sibling(cols=union.reshape(-1, 1))
        union = sorted(set(self.mask_list()).union(other.mask_list()))
        _guard(len(union), "sparse union")
        if self._cols is not None:
            return self._sibling(cols=_ints_to_cols(union, self.words))
        return self._sibling(ints=tuple(union))

    def translate(self, mask: int) -> "SparseModelSet":
        """The set ``{ m ^ mask : m in self }``.

        XOR by a constant is a bijection, so the size is unchanged — only
        a re-sort is needed, never a dedup or a budget check.
        """
        if not mask:
            return self
        if self._cols is not None:
            moved = self._cols ^ self._mask_words(mask)[None, :]
            return self._sibling(cols=_canon_cols(moved))
        return self._sibling(ints=tuple(sorted(m ^ mask for m in self._ints)))

    # -- popcount rings ------------------------------------------------------

    def ring(self, k: int) -> "SparseModelSet":
        """The models with popcount exactly ``k``."""
        pc = self.popcounts()
        if self._cols is not None:
            return self._take(pc == k)
        return self._take([c == k for c in pc])

    def first_ring(self) -> Tuple[int, "SparseModelSet"]:
        """``(k, ring)`` for the smallest non-empty popcount ring."""
        if not self.count():
            raise ValueError("first_ring of an empty model set")
        pc = self.popcounts()
        if self._cols is not None:
            k = int(pc.min())
        else:
            k = min(pc)
        return k, self.ring(k)

    # -- antichain sweeps ----------------------------------------------------

    def minimal_elements(self) -> "SparseModelSet":
        """Inclusion-minimal masks (popcount-level antichain sweep)."""
        if self._cols is None:
            return self._sibling(ints=tuple(sorted(min_subset_masks(self._ints))))
        keep = _minimal_rows(self._cols, _np.asarray(self.popcounts()))
        return self._take(keep)

    def maximal_elements(self) -> "SparseModelSet":
        """Inclusion-maximal masks (mirror sweep, descending levels)."""
        if self._cols is None:
            return self._sibling(ints=tuple(sorted(max_subset_masks(self._ints))))
        inverted = ~self._cols
        if len(self.alphabet) % WORD_BITS or len(self.alphabet) < WORD_BITS:
            # Mask the unused high bits so complement stays in-alphabet.
            top = self.alphabet.universe
            inverted = inverted & self._mask_words(top)[None, :]
        counts = _popcounts(inverted).sum(axis=1).astype(_np.int64)
        keep = _minimal_rows(inverted, counts)
        return self._take(keep)

    # -- Hamming geometry ----------------------------------------------------

    def neighbors(self) -> "SparseModelSet":
        """All masks at Hamming distance exactly 1 from a member."""
        flips = [1 << i for i in range(len(self.alphabet))]
        if self._cols is not None:
            ints = self.mask_list()
            grown = {m ^ f for m in ints for f in flips}
            _guard(len(grown), "sparse neighbor growth")
            return self._sibling(cols=_ints_to_cols(sorted(grown), self.words))
        grown = {m ^ f for m in self._ints for f in flips}
        _guard(len(grown), "sparse neighbor growth")
        return self._sibling(ints=tuple(sorted(grown)))

    def hamming_ball(self, radius: int) -> "SparseModelSet":
        """All masks within Hamming distance ``radius`` of a member.

        Grows one ring at a time; density-proportional only for small
        radii — the budget guard spills before the ball gets dense.
        """
        ball = self
        for _ in range(radius):
            ball = ball | ball.neighbors()
        return ball

    def min_distance(self, other: "SparseModelSet") -> int:
        """Minimum Hamming distance between members of the two sets.

        A blocked XOR/popcount pair sweep: ``O(|self|·|other|)`` popcounts
        and never any ball materialisation.
        """
        self._check_compatible(other)
        if not self.count() or not other.count():
            raise ValueError("min Hamming distance of an empty model set")
        return min_distance_select(self, other)[0]


def _minimal_rows(cols, counts):
    """Boolean selector of the inclusion-minimal rows of ``cols``.

    The level sweep of :func:`repro.logic.bitmodels.min_subset_masks`,
    vectorised: walk popcount levels ascending; a candidate is dominated
    iff an already-accepted row is a submask (``accepted & ~cand == 0``
    on every word); accept the survivors into the antichain.  Candidate
    blocks are chunked against the pair budget.
    """
    keep = _np.zeros(len(cols), dtype=bool)
    accepted = None
    words = cols.shape[1]
    for level in _np.unique(counts):
        idx = _np.nonzero(counts == level)[0]
        cand = cols[idx]
        if accepted is not None and len(idx):
            chunk = max(1, _PAIR_BUDGET // max(1, len(accepted) * words))
            surviving = []
            for start in range(0, len(idx), chunk):
                part = cand[start:start + chunk]
                dominated = (
                    (accepted[:, None, :] & ~part[None, :, :]) == 0
                ).all(axis=2).any(axis=0)
                surviving.append(~dominated)
            alive = _np.concatenate(surviving)
            idx, cand = idx[alive], cand[alive]
        if len(idx):
            keep[idx] = True
            accepted = (
                cand if accepted is None else _np.concatenate([accepted, cand])
            )
    return keep


def expand_cubes(
    cubes: "Iterable[Tuple[int, Sequence[int]]]",
    budget: Optional[int] = None,
):
    """Stream packed model masks out of ``(base_mask, free_bit_masks)`` cubes.

    The one canonical cube expansion (every other emission path delegates
    here): per cube, double the running block once per free bit, so the
    completions come out in ascending free-completion order.  With a
    ``budget``, :class:`SparseSpill` is raised as soon as the running
    total *would* cross it — checked before each doubling, so a cube with
    dozens of free bits spills immediately instead of materialising
    ``2^k`` masks first.
    """

    def overflow(count: int) -> SparseSpill:
        # Name the knob that actually bound: the live env-tunable budget
        # when the caller passed it through, the explicit argument
        # otherwise — so a degradation log says which limit to raise.
        live = max_models()
        if budget == live:
            knob = (
                f"the live sparse model budget "
                f"REPRO_SPARSE_MAX_MODELS={budget}"
            )
        else:
            knob = (
                f"the explicit budget={budget} argument "
                f"(REPRO_SPARSE_MAX_MODELS={live} is not the binding "
                f"limit here)"
            )
        return SparseSpill(
            f"sparse cube expansion: {count} models exceed {knob}"
        )

    total = 0
    for base, free_bits in cubes:
        expansions = [base]
        for bit in free_bits:
            if budget is not None and total + 2 * len(expansions) > budget:
                raise overflow(total + 2 * len(expansions))
            expansions += [mask | bit for mask in expansions]
        total += len(expansions)
        if budget is not None and total > budget:
            raise overflow(total)
        yield from expansions


# ---------------------------------------------------------------------------
# Formula evaluation over the carrier rows
# ---------------------------------------------------------------------------


def evaluate_formula(formula, model_set: "SparseModelSet"):
    """Truth value of ``formula`` on every model of the carrier at once.

    Returns a boolean vector aligned with :meth:`SparseModelSet.iter_masks`
    order (a numpy bool array on the numpy backend, a list of bools on
    pure-int).  One pass per formula node, vectorised over the rows: a
    variable is a bit test on its column word, connectives are elementwise
    boolean ops.  This is what lets ``RevisionResult.entails`` answer on
    the sparse carrier at mask-tier alphabets — ``O(nodes)`` vector ops
    instead of a per-model ``Formula.evaluate`` walk over frozensets —
    and what the incremental-carrier path uses to re-check the previous
    model set against a new constraint.
    """
    from .formula import And, Iff, Implies, Not, Or, Var, Xor, _Constant

    alphabet = model_set.alphabet
    cols = model_set._cols
    if cols is not None:
        count = len(cols)
        memo = {}

        def walk(node):
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            if isinstance(node, Var):
                bit = alphabet.bit(node.name)
                word, offset = divmod(bit, WORD_BITS)
                result = (
                    cols[:, word] >> _np.uint64(offset) & _np.uint64(1)
                ).astype(bool)
            elif isinstance(node, Not):
                result = ~walk(node.operand)
            elif isinstance(node, And):
                result = _np.ones(count, dtype=bool)
                for operand in node.operands:
                    result = result & walk(operand)
            elif isinstance(node, Or):
                result = _np.zeros(count, dtype=bool)
                for operand in node.operands:
                    result = result | walk(operand)
            elif isinstance(node, Implies):
                result = ~walk(node.antecedent) | walk(node.consequent)
            elif isinstance(node, Iff):
                result = walk(node.left) == walk(node.right)
            elif isinstance(node, Xor):
                result = walk(node.left) != walk(node.right)
            elif isinstance(node, _Constant):
                result = (
                    _np.ones(count, dtype=bool)
                    if node.value
                    else _np.zeros(count, dtype=bool)
                )
            else:
                raise TypeError(
                    f"cannot evaluate {type(node).__name__} on a carrier"
                )
            memo[id(node)] = result
            return result

        return walk(formula)

    # Pure-int fallback: one shared mask-level recursion per model
    # (:func:`repro.logic.bitmodels.evaluate_mask` — a single source of
    # truth for the connective semantics).
    from .bitmodels import evaluate_mask

    return [
        evaluate_mask(formula, mask, alphabet)
        for mask in model_set.mask_list()
    ]


# ---------------------------------------------------------------------------
# Pair kernels (the density-proportional counterparts of the bitplane sweeps)
# ---------------------------------------------------------------------------


def _rows_void(cols):
    """Rows of a ``(m, w)`` uint64 array as one void element each — the
    fixed-width byte view that lets row-wise membership (:func:`numpy.isin`)
    and uniqueness run vectorised for any word count."""
    arr = _np.ascontiguousarray(cols)
    void = _np.dtype((_np.void, arr.dtype.itemsize * arr.shape[1]))
    return arr.view(void).ravel()


def _pair_counts(t_cols, p_cols):
    """``(|T|, |P|)`` Hamming-distance matrix (popcount of the XOR)."""
    counts = None
    for j in range(t_cols.shape[1]):
        part = _popcounts(t_cols[:, j][:, None] ^ p_cols[None, :, j])
        counts = part.astype(_np.int32) if counts is None else counts + part
    return counts


def _t_chunk_rows(p_count: int, words: int) -> int:
    return max(1, _PAIR_BUDGET // max(1, p_count * words))


def _fanout_chunks(chunks, select, letter_count, processes):
    """OR-combine ``select(chunk) -> bool array`` over a thread pool.

    Union is the only combine, so the result is independent of worker
    count and chunk order; threads suffice because the numpy kernels
    release the GIL.  Every chunk polls a governance checkpoint first,
    and the pool (:func:`repro.runtime.pool.map_threads`) cancels the
    pending chunks as soon as one raises — a deadline mid-sweep stops
    promptly and leaks nothing.
    """
    workers = (
        max(1, processes) if processes is not None
        else _shards.parallel_workers(letter_count)
    )

    def checked(chunk):
        _runtime.checkpoint()
        return select(chunk)

    partials = _pool.map_threads(checked, chunks, workers)
    combined = partials[0]
    for partial in partials[1:]:
        combined |= partial
    return combined


def _pointwise_numpy(kind, p_set, t_cols, processes):
    p_cols = p_set._require_cols()
    words = p_cols.shape[1]
    rows = _t_chunk_rows(len(p_cols), words)
    chunks = [t_cols[start:start + rows] for start in range(0, len(t_cols), rows)]

    if kind == "ring":
        def select(chunk):
            counts = _pair_counts(chunk, p_cols)
            return (counts == counts.min(axis=1, keepdims=True)).any(axis=0)
    else:  # minimal
        def select(chunk):
            picked = _np.zeros(len(p_cols), dtype=bool)
            for row in chunk:
                diffs = p_cols ^ row[None, :]
                counts = _popcounts(diffs).sum(axis=1).astype(_np.int64)
                picked |= _minimal_rows(diffs, counts)
            return picked

    selected = _fanout_chunks(
        chunks, select, len(p_set.alphabet), processes
    )
    return p_set._take(selected)


def _pointwise_int_serial(kind, p_ints, t_ints):
    """Per-model reference loop (also the multiprocessing worker body)."""
    selected = set()
    for model in t_ints:
        _runtime.checkpoint()
        if kind == "ring":
            best = min((model ^ p).bit_count() for p in p_ints)
            selected.update(p for p in p_ints if (model ^ p).bit_count() == best)
        else:  # minimal: XOR is a bijection, so diffs are distinct per model
            diffs = min_subset_masks(model ^ p for p in p_ints)
            selected.update(model ^ diff for diff in diffs)
    return selected


def _sparse_range_worker(args):
    """Top-level (picklable) worker for the pure-int process fan-out."""
    kind, p_ints, t_chunk = args
    return _pointwise_int_serial(kind, p_ints, t_chunk)


def _pointwise_int(kind, p_set, t_ints, processes):
    workers = (
        max(1, processes) if processes is not None
        else _shards.parallel_workers(len(p_set.alphabet))
    )
    workers = min(workers, len(t_ints))
    if not _runtime.allows_fanout():
        # Children can't observe the parent's deadline/cancellation;
        # the serial loop below checkpoints cooperatively instead.
        workers = 1
    p_ints = p_set.mask_list()
    if workers <= 1:
        selected = _pointwise_int_serial(kind, p_ints, t_ints)
    else:
        chunk = (len(t_ints) + workers - 1) // workers
        jobs = [
            (kind, p_ints, t_ints[start:start + chunk])
            for start in range(0, len(t_ints), chunk)
        ]
        partials = _pool.map_with_recovery(
            _sparse_range_worker,
            jobs,
            workers=len(jobs),
            label="sparse T-range fan-out",
        )
        selected = set().union(*partials)
    return p_set._sibling(ints=tuple(sorted(selected)))


def _coerce_masks(t_masks) -> List[int]:
    if isinstance(t_masks, SparseModelSet):
        return list(t_masks.mask_list())
    if _np is not None and isinstance(t_masks, _np.ndarray):
        return [int(m) for m in t_masks]
    return list(t_masks)


def pointwise_select(
    kind: str,
    p_set: SparseModelSet,
    t_masks,
    processes: Optional[int] = None,
) -> SparseModelSet:
    """Batched pointwise selection over all T-models, density-proportional.

    Same contract as :func:`repro.logic.shards.pointwise_select`, on the
    sparse carrier: for every model ``M`` in ``t_masks``, XOR-translate
    ``p_set`` by ``M``, keep the inclusion-minimal differences
    (``"minimal"``, Winslett), the smallest-popcount ring (``"ring"``,
    Forbus) or everything (``"union"``), translate back, union.  For the
    selecting kinds the result is a subset of ``p_set`` (translation is
    self-inverse), so no bitplane and no budget risk; only ``"union"`` can
    grow and spill.  Bit-identical for any worker count — union is the
    only cross-model combine.
    """
    if kind not in ("minimal", "ring", "union"):
        raise ValueError(f"unknown pointwise kind {kind!r}")
    if kind == "union":
        return translate_union(p_set, t_masks, processes)
    with _obs.span(
        "kernel.pointwise", kind=kind, tier="sparse",
        letters=len(p_set.alphabet), models=p_set.count(),
    ):
        return _pointwise_dispatch(kind, p_set, t_masks, processes)


def _pointwise_dispatch(
    kind: str,
    p_set: SparseModelSet,
    t_masks,
    processes: Optional[int],
) -> SparseModelSet:
    if not p_set.count():
        if kind == "ring":
            # Match the dense tiers: first_ring of an empty table raises.
            raise ValueError("first_ring of an empty model set")
        return p_set
    masks = _coerce_masks(t_masks)
    if not masks:
        return p_set._sibling(
            cols=p_set._cols[:0] if p_set._cols is not None else None,
            ints=() if p_set._cols is None else None,
        )
    if p_set._cols is not None:
        t_cols = _ints_to_cols(masks, p_set.words)
        return _pointwise_numpy(kind, p_set, t_cols, processes)
    return _pointwise_int(kind, p_set, masks, processes)


def translate_union(
    table: SparseModelSet, masks, processes: Optional[int] = None
) -> SparseModelSet:
    """The union of ``table`` XOR-translated by every mask in ``masks``.

    The sparse form of the loop behind ``delta(T, P)`` and Satoh's
    reachable set: all ``|table| * |masks|`` pair XORs, blocked and
    deduplicated incrementally; raises :class:`SparseSpill` as soon as the
    running union crosses the budget (the caller then reruns the selection
    on the SAT tier).
    """
    masks = _coerce_masks(masks)
    if not masks:
        return table._sibling(
            cols=table._cols[:0] if table._cols is not None else None,
            ints=() if table._cols is None else None,
        )
    with _obs.span(
        "kernel.pointwise", kind="union", tier="sparse",
        letters=len(table.alphabet), models=len(masks),
    ):
        return _translate_union_impl(table, masks)


def _translate_union_impl(
    table: SparseModelSet, masks
) -> SparseModelSet:
    if table._cols is not None:
        cols = table._cols
        words = cols.shape[1]
        t_cols = _ints_to_cols(masks, words)
        running = None
        rows = _t_chunk_rows(len(cols), words)
        for start in range(0, len(t_cols), rows):
            _runtime.checkpoint()
            chunk = t_cols[start:start + rows]
            _runtime.charge_words(
                len(chunk) * len(cols) * words, "sparse translate-union block"
            )
            pairs = (chunk[:, None, :] ^ cols[None, :, :]).reshape(-1, words)
            fresh = _canon_cols(pairs)
            running = (
                fresh if running is None
                else _canon_cols(_np.concatenate([running, fresh]))
            )
            _guard(len(running), "sparse translate-union")
        return table._sibling(cols=running)
    ints = table.mask_list()
    union = set()
    for mask in masks:
        _runtime.checkpoint()
        union.update(mask ^ m for m in ints)
        _guard(len(union), "sparse translate-union")
    return table._sibling(ints=tuple(sorted(union)))


def min_distance_select(
    t_set: SparseModelSet, p_set: SparseModelSet
) -> Tuple[int, SparseModelSet]:
    """``(k, selected)``: the minimum Hamming distance between the two sets
    and the members of ``p_set`` attaining it — Dalal's selection without
    ever materialising a Hamming ball (blocked pair sweep)."""
    t_set._check_compatible(p_set)
    if not t_set.count() or not p_set.count():
        raise ValueError("min Hamming distance of an empty model set")
    with _obs.span(
        "kernel.min_distance", tier="sparse",
        letters=len(t_set.alphabet),
    ):
        return _min_distance_select_impl(t_set, p_set)


def _min_distance_select_impl(
    t_set: SparseModelSet, p_set: SparseModelSet
) -> Tuple[int, SparseModelSet]:
    if t_set._cols is not None and p_set._cols is not None:
        p_cols = p_set._cols
        words = p_cols.shape[1]
        rows = _t_chunk_rows(len(p_cols), words)
        best = None
        per_p = None
        for start in range(0, len(t_set._cols), rows):
            _runtime.checkpoint()
            counts = _pair_counts(t_set._cols[start:start + rows], p_cols)
            chunk_min = counts.min(axis=0)
            per_p = chunk_min if per_p is None else _np.minimum(per_p, chunk_min)
        best = int(per_p.min())
        return best, p_set._take(per_p == best)
    t_ints = t_set.mask_list()
    per_p = [
        min((p ^ t).bit_count() for t in t_ints) for p in p_set.mask_list()
    ]
    best = min(per_p)
    return best, p_set._take([d == best for d in per_p])


def reachable_select(
    t_set: SparseModelSet, p_set: SparseModelSet, delta_set: SparseModelSet
) -> SparseModelSet:
    """Members of ``p_set`` at a ``delta_set``-difference from some member
    of ``t_set`` — Satoh's selection as a membership pair sweep.

    The dense tiers materialise the reachable set (``T`` translated by
    every delta member, ``|T| * |delta|`` masks) and intersect with ``P``;
    at sparse densities that union is exactly the explosion the tier must
    avoid, while ``{ (t, p) : t △ p ∈ delta }`` needs only
    ``|T| * |P|`` membership probes into the delta antichain.
    """
    t_set._check_compatible(p_set)
    t_set._check_compatible(delta_set)
    with _obs.span(
        "kernel.reachable", tier="sparse", letters=len(t_set.alphabet),
    ):
        return _reachable_select_impl(t_set, p_set, delta_set)


def _reachable_select_impl(
    t_set: SparseModelSet, p_set: SparseModelSet, delta_set: SparseModelSet
) -> SparseModelSet:
    if not t_set.count() or not p_set.count() or not delta_set.count():
        return p_set._take(
            _np.zeros(p_set.count(), dtype=bool)
            if p_set._cols is not None
            else [False] * p_set.count()
        )
    if (
        t_set._cols is not None
        and p_set._cols is not None
        and delta_set._cols is not None
    ):
        p_cols = p_set._cols
        words = p_cols.shape[1]
        selected = _np.zeros(len(p_cols), dtype=bool)
        rows = _t_chunk_rows(len(p_cols), words)
        if words == 1:
            t_arr = t_set._cols.ravel()
            p_arr = p_cols.ravel()
            d_arr = delta_set._cols.ravel()
            for start in range(0, len(t_arr), rows):
                _runtime.checkpoint()
                pairs = t_arr[start:start + rows][:, None] ^ p_arr[None, :]
                selected |= _np.isin(pairs, d_arr).any(axis=0)
        else:
            d_void = _rows_void(delta_set._cols)
            for start in range(0, len(t_set._cols), rows):
                _runtime.checkpoint()
                chunk = t_set._cols[start:start + rows]
                pairs = (chunk[:, None, :] ^ p_cols[None, :, :]).reshape(-1, words)
                member = _np.isin(_rows_void(pairs), d_void)
                selected |= member.reshape(len(chunk), -1).any(axis=0)
        return p_set._take(selected)
    delta_ints = set(delta_set.mask_list())
    t_ints = t_set.mask_list()
    return p_set._take(
        [
            any((p ^ t) in delta_ints for t in t_ints)
            for p in p_set.mask_list()
        ]
    )


def confined_select(
    t_set: SparseModelSet, p_set: SparseModelSet, allowed: int
) -> SparseModelSet:
    """Members of ``p_set`` whose difference from some member of ``t_set``
    is confined to the ``allowed`` letters — Weber's selection without the
    ``2^|Ω|`` closure of the dense tiers (one blocked pair sweep)."""
    t_set._check_compatible(p_set)
    if not t_set.count() or not p_set.count():
        return p_set._take(
            _np.zeros(p_set.count(), dtype=bool)
            if p_set._cols is not None
            else [False] * p_set.count()
        )
    with _obs.span(
        "kernel.confined", tier="sparse", letters=len(t_set.alphabet),
    ):
        return _confined_select_impl(t_set, p_set, allowed)


def _confined_select_impl(
    t_set: SparseModelSet, p_set: SparseModelSet, allowed: int
) -> SparseModelSet:
    forbidden = t_set.alphabet.universe & ~allowed
    if t_set._cols is not None and p_set._cols is not None:
        p_cols = p_set._cols
        words = p_cols.shape[1]
        bad = p_set._mask_words(forbidden)
        rows = _t_chunk_rows(len(p_cols), words)
        selected = _np.zeros(len(p_cols), dtype=bool)
        for start in range(0, len(t_set._cols), rows):
            _runtime.checkpoint()
            chunk = t_set._cols[start:start + rows]
            ok = None
            for j in range(words):
                part = ((chunk[:, j][:, None] ^ p_cols[None, :, j]) & bad[j]) == 0
                ok = part if ok is None else (ok & part)
            selected |= ok.any(axis=0)
        return p_set._take(selected)
    t_ints = t_set.mask_list()
    return p_set._take(
        [
            any((p ^ t) & forbidden == 0 for t in t_ints)
            for p in p_set.mask_list()
        ]
    )
