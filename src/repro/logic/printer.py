"""Pretty-printer for formulas.

Produces a concrete syntax that :mod:`repro.logic.parser` parses back,
round-tripping structurally (`parse(to_str(f)) == f` up to n-ary flattening).

Concrete syntax:

* ``~``  negation
* ``&``  conjunction
* ``|``  disjunction
* ``->`` implication (right-associative)
* ``<->`` equivalence
* ``^``  non-equivalence (xor)
* ``true`` / ``false`` constants

Precedence (tightest first): ``~``, ``&``, ``|``, ``^``, ``->``, ``<->``.
"""

from __future__ import annotations

from .formula import (
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    Xor,
)

# Precedence levels; a child is parenthesised when its level is looser than
# (or, for non-associative operators, equal to) the context it appears in.
_PREC_IFF = 0
_PREC_IMPLIES = 1
_PREC_XOR = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_ATOM = 6


def to_str(formula: Formula) -> str:
    """Render ``formula`` in the library's concrete syntax."""
    return _render(formula, 0)


def _level(formula: Formula) -> int:
    if isinstance(formula, (Var, Top, Bottom)):
        return _PREC_ATOM
    if isinstance(formula, Not):
        return _PREC_NOT
    if isinstance(formula, And):
        return _PREC_AND
    if isinstance(formula, Or):
        return _PREC_OR
    if isinstance(formula, Xor):
        return _PREC_XOR
    if isinstance(formula, Implies):
        return _PREC_IMPLIES
    if isinstance(formula, Iff):
        return _PREC_IFF
    raise TypeError(f"unknown formula node {formula!r}")


def _render(formula: Formula, context: int) -> str:
    level = _level(formula)

    if isinstance(formula, Var):
        text = formula.name
    elif isinstance(formula, Top):
        text = "true"
    elif isinstance(formula, Bottom):
        text = "false"
    elif isinstance(formula, Not):
        text = "~" + _render(formula.operand, _PREC_NOT)
    elif isinstance(formula, And):
        if not formula.operands:
            text = "true"
        else:
            text = " & ".join(_render(op, _PREC_AND) for op in formula.operands)
    elif isinstance(formula, Or):
        if not formula.operands:
            text = "false"
        else:
            text = " | ".join(_render(op, _PREC_OR) for op in formula.operands)
    elif isinstance(formula, Xor):
        # Non-associative in the grammar: parenthesise nested xor on the left.
        text = (
            _render(formula.left, _PREC_XOR + 1)
            + " ^ "
            + _render(formula.right, _PREC_XOR + 1)
        )
    elif isinstance(formula, Implies):
        # Right-associative: the consequent may be another implication.
        text = (
            _render(formula.antecedent, _PREC_IMPLIES + 1)
            + " -> "
            + _render(formula.consequent, _PREC_IMPLIES)
        )
    elif isinstance(formula, Iff):
        text = (
            _render(formula.left, _PREC_IFF + 1)
            + " <-> "
            + _render(formula.right, _PREC_IFF + 1)
        )
    else:  # pragma: no cover - exhaustive above
        raise TypeError(f"unknown formula node {formula!r}")

    if level < context:
        return "(" + text + ")"
    return text
