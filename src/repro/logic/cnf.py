"""CNF conversion: distributive (equivalence-preserving) and Tseitin.

Two conversions are provided because the paper distinguishes exactly these two
regimes:

* :func:`to_cnf_distributive` preserves *logical equivalence* (criterion (2)
  of the paper) but may blow up exponentially;
* :func:`tseitin` preserves only *query equivalence over the original
  alphabet* (criterion (1)): it introduces fresh definitional letters, stays
  linear in size, and every model of the original formula extends uniquely to
  a model of the translation.

Clauses are represented as frozensets of literals; a literal is a pair
``(name, positive)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .formula import (
    FALSE,
    TRUE,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    Xor,
    big_and,
    big_or,
    land,
    literal,
    lnot,
    lor,
)
from .nnf import to_nnf

Literal = Tuple[str, bool]
Clause = FrozenSet[Literal]
ClauseSet = List[Clause]


def negate_literal(lit: Literal) -> Literal:
    """The complementary literal."""
    name, positive = lit
    return (name, not positive)


def clause_formula(clause: Iterable[Literal]) -> Formula:
    """Render one clause as a disjunction of literals."""
    return big_or(literal(name, positive) for name, positive in sorted(clause))


def clauses_formula(clauses: Iterable[Iterable[Literal]]) -> Formula:
    """Render a clause set as a conjunction of disjunctions."""
    return big_and(clause_formula(clause) for clause in clauses)


def _simplify_clauses(clauses: Iterable[Iterable[Literal]]) -> ClauseSet | None:
    """Drop tautological clauses and duplicates; ``None`` marks an empty
    clause (unsatisfiable input)."""
    out: dict[Clause, None] = {}
    for raw in clauses:
        clause = frozenset(raw)
        if any(negate_literal(lit) in clause for lit in clause):
            continue
        if not clause:
            return None
        out[clause] = None
    return list(out)


def to_cnf_distributive(formula: Formula) -> ClauseSet:
    """Equivalence-preserving CNF by distribution over the NNF.

    Exponential in the worst case — use only on small formulas (tests, the
    bounded-|P| constructions) or when logical equivalence is required.
    The constant ``FALSE`` yields ``[frozenset()]`` (the empty clause); a
    valid formula yields ``[]``.  Other unsatisfiable inputs may surface as
    complementary unit clauses rather than the empty clause.
    """
    nnf = to_nnf(formula)
    clauses = _distribute(nnf)
    simplified = _simplify_clauses(clauses)
    if simplified is None:
        return [frozenset()]
    return simplified


def _distribute(formula: Formula) -> List[FrozenSet[Literal]]:
    if isinstance(formula, Top):
        return []
    if isinstance(formula, Bottom):
        return [frozenset()]
    if isinstance(formula, Var):
        return [frozenset([(formula.name, True)])]
    if isinstance(formula, Not):
        operand = formula.operand
        if not isinstance(operand, Var):  # pragma: no cover - guaranteed by NNF
            raise ValueError("input must be in NNF")
        return [frozenset([(operand.name, False)])]
    if isinstance(formula, And):
        result: List[FrozenSet[Literal]] = []
        for op in formula.operands:
            result.extend(_distribute(op))
        return result
    if isinstance(formula, Or):
        # Fold the cross-product left to right, pruning tautologies eagerly.
        acc: List[FrozenSet[Literal]] = [frozenset()]
        for op in formula.operands:
            op_clauses = _distribute(op)
            new_acc: List[FrozenSet[Literal]] = []
            seen: Set[Clause] = set()
            for left in acc:
                for right in op_clauses:
                    merged = left | right
                    if any(negate_literal(lit) in merged for lit in merged):
                        continue
                    if merged not in seen:
                        seen.add(merged)
                        new_acc.append(merged)
            acc = new_acc
            if not acc:
                # Every merge was tautological: this disjunct is valid.
                return []
        return acc
    raise ValueError("input must be in NNF")


class TseitinResult:
    """Outcome of a Tseitin transformation.

    Attributes:
        clauses: CNF clause set, equisatisfiable with the input and
            query-equivalent over the input's alphabet.
        root: literal asserting the whole formula (already included in
            ``clauses`` as a unit clause).
        aux_names: the fresh definitional letters introduced, in order.
        alphabet: the original formula's letters.
    """

    def __init__(
        self,
        clauses: ClauseSet,
        root: Literal,
        aux_names: List[str],
        alphabet: FrozenSet[str],
    ) -> None:
        self.clauses = clauses
        self.root = root
        self.aux_names = aux_names
        self.alphabet = alphabet

    def formula(self) -> Formula:
        """The clause set as a single conjunction (over extended alphabet)."""
        return clauses_formula(self.clauses)


def tseitin(formula: Formula, prefix: str = "_t") -> TseitinResult:
    """Tseitin transformation of ``formula``.

    Every non-literal subformula receives a fresh definitional letter with
    full (two-sided) defining clauses, so auxiliary letters are functionally
    determined by the original ones: the translation is *query equivalent*
    to the input over the input's alphabet, and model counts over the
    original alphabet are preserved.
    """
    nnf = to_nnf(formula)
    alphabet = nnf.variables()
    counter = [0]
    aux_names: List[str] = []
    clauses: ClauseSet = []
    cache: Dict[Formula, Literal] = {}

    def fresh() -> str:
        while True:
            name = f"{prefix}{counter[0]}"
            counter[0] += 1
            if name not in alphabet:
                aux_names.append(name)
                return name

    def encode(node: Formula) -> Literal:
        if node in cache:
            return cache[node]
        result: Literal
        if isinstance(node, Var):
            result = (node.name, True)
        elif isinstance(node, Not):
            inner = node.operand
            if not isinstance(inner, Var):  # pragma: no cover - NNF guarantee
                raise ValueError("input must be in NNF")
            result = (inner.name, False)
        elif isinstance(node, (And, Or)):
            child_lits = [encode(child) for child in node.operands]
            gate = fresh()
            gate_lit: Literal = (gate, True)
            neg_gate = (gate, False)
            if isinstance(node, And):
                # gate -> child_i ; (child_1 & ... & child_k) -> gate
                for lit in child_lits:
                    clauses.append(frozenset([neg_gate, lit]))
                clauses.append(
                    frozenset([gate_lit] + [negate_literal(lit) for lit in child_lits])
                )
            else:
                # child_i -> gate ; gate -> (child_1 | ... | child_k)
                for lit in child_lits:
                    clauses.append(frozenset([negate_literal(lit), gate_lit]))
                clauses.append(frozenset([neg_gate] + child_lits))
            result = gate_lit
        elif isinstance(node, Top):
            gate = fresh()
            clauses.append(frozenset([(gate, True)]))
            result = (gate, True)
        elif isinstance(node, Bottom):
            gate = fresh()
            clauses.append(frozenset([(gate, False)]))
            result = (gate, True)
        else:  # pragma: no cover - NNF guarantee
            raise ValueError("input must be in NNF")
        cache[node] = result
        return result

    root = encode(nnf)
    clauses.append(frozenset([root]))
    return TseitinResult(clauses, root, aux_names, alphabet)


def cnf_size(clauses: Sequence[Clause]) -> int:
    """Total number of literal occurrences — the paper's ``|W|`` for CNF."""
    return sum(len(clause) for clause in clauses)
