"""Bitmask model-set engine: interpretations as ints, model sets as big-ints.

The paper's semantic core manipulates *sets of interpretations* — the
ground-truth model sets of ``T``, ``P`` and ``T * P`` — and the proximity
measures between them (``M △ N``, ``|M △ N|``, ``min⊆``).  Representing an
interpretation as a ``frozenset[str]`` makes every symmetric difference an
allocation; this module packs the same semantics into machine integers at
two levels:

**Level 1 — interpretations as masks.**  A :class:`BitAlphabet` fixes a
bijection between the (sorted) letters and bit indices, so an interpretation
becomes an ``int`` whose bit ``i`` says whether letter ``i`` is true.  Then

* ``M △ N``  is ``m ^ n`` (XOR),
* ``|M △ N|`` is ``(m ^ n).bit_count()`` (popcount),
* ``M ⊆ N``  is ``m & n == m``,

and :func:`min_subset_masks` / :func:`max_subset_masks` find the
inclusion-minimal/-maximal elements of a family by *size-sorted submask
pruning*: candidates are visited in popcount order, so only the accepted
antichain needs to be consulted — ``O(u·|antichain|)`` submask tests instead
of the all-pairs ``O(u²)`` scan.

**Level 2 — model sets as truth tables.**  Over ``n ≤ ~20`` letters a whole
*set* of interpretations is a single big-int of ``2^n`` bits: bit ``j`` is
set iff the interpretation with mask ``j`` is in the set.  In this encoding

* a formula compiles to its truth-table column (:func:`truth_table`): each
  variable contributes a precomputed periodic column (letter ``i`` is true
  on blocks of ``2^i`` indices), and ``∧ / ∨ / ¬`` become ``& / | / ^full``
  — one big-int expression evaluates the formula on *all* ``2^n``
  interpretations at once;
* XOR-translating every model by a fixed mask ``m`` (the map ``N ↦ N △ M``)
  is a sequence of ``popcount(m)`` shift-and-merge steps
  (:func:`xor_translate_table`);
* the inclusion-minimal elements of a set are found by an upward
  subset-sum closure in ``2n`` big-int operations
  (:func:`minimal_elements_table`), and Hamming balls grow one ring at a
  time via single-bit flips (:func:`min_hamming_distance_tables`).

The big-int encoding costs ``2^n / 8`` bytes per table, so it is the engine
of choice up to ``n ≈ 20`` letters (``_TABLE_MAX_LETTERS``: 1 MiB per
table).

**Level 3 — sharded truth tables.**  One big-int per table is a memory-and-
GIL wall, not a hardware one: every AND/XOR re-materialises the whole
``2^n``-bit integer in one thread.  :mod:`repro.logic.shards` therefore
splits the table into fixed-width chunks — a numpy ``uint64`` bitplane when
numpy is available, a list of ``2^16``-bit integer shards otherwise, with a
``multiprocessing`` shard map for the biggest alphabets — and reimplements
every Level-2 primitive shard-wise, including the batched multi-model
kernels behind the pointwise operators.  That raises the effective table
range to ``shards.SHARD_MAX_LETTERS`` (default 26; 8 MiB bitplanes).

**Level 4 — sparse model sets.**  Both table tiers pay for the alphabet,
not the models: a bounded-density KB over a large schema (a few thousand
admissible states at 40 letters) fits no bitplane but fits a sorted array
of model masks easily.  :mod:`repro.logic.sparse` stores exactly that —
numpy uint64 column blocks (pure-int fallback) — and implements the
selection rules density-proportionally, spilling to the SAT tier's mask
loops when an intermediate crosses ``shards.SPARSE_MAX_MODELS`` (env
``REPRO_SPARSE_MAX_MODELS``).

Dispatch is four-tiered and decided by :func:`repro.logic.shards.tier`,
which reads every cutoff live so env overrides are never misreported:
big-int tables up to ``_TABLE_MAX_LETTERS`` (default 20, env
``REPRO_TABLE_MAX_LETTERS``), sharded tables up to
``shards.SHARD_MAX_LETTERS`` (default 26, env ``REPRO_SHARD_MAX_LETTERS``),
the sparse tier beyond that whenever a model-count bound fits the live
``shards.SPARSE_MAX_MODELS`` budget, and the SAT tier plus the Level-1
mask operations otherwise.  The SAT tier's model sets come from the
incremental AllSAT enumerator of :mod:`repro.sat.allsat` (resumable
chronological search emitting don't-care *cubes* straight into masks or
sparse column blocks; ``REPRO_ALLSAT=0`` keeps the old blocking-clause
loop).  All callers in :mod:`repro.sat.interface` and
:mod:`repro.revision` apply the dispatch automatically;
:class:`BitModelSet` materialises its mask set lazily so sharded- and
sparse-tier results can stay in carrier form end to end.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .formula import And, Formula, Iff, Implies, Not, Or, Top, Var, Xor, _Constant

#: Above this many letters the ``2^n``-bit big-int encoding hands over to
#: the sharded tier (:mod:`repro.logic.shards`), and beyond that to SAT
#: enumeration plus the mask-list operations.  Env-overridable so harnesses
#: can force the sharded tier onto small alphabets.
_TABLE_MAX_LETTERS = int(os.environ.get("REPRO_TABLE_MAX_LETTERS", "20"))

#: For each byte value, the positions of its set bits — used to stream the
#: set bits of a big-int without quadratic shifting.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(i for i in range(8) if value >> i & 1) for value in range(256)
)


def iter_set_bits(value: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``value``, ascending.

    Streams via ``to_bytes`` so the cost is linear in the integer's width
    plus the number of set bits (repeatedly shifting a ``2^n``-bit integer
    would be quadratic).
    """
    if value < 0:
        raise ValueError("negative value has no well-defined bit set")
    if value == 0:
        return
    data = value.to_bytes((value.bit_length() + 7) // 8, "little")
    byte_bits = _BYTE_BITS
    for base, byte in enumerate(data):
        if byte:
            offset = base << 3
            for position in byte_bits[byte]:
                yield offset + position


#: Interned alphabets (letter tuple -> instance); insertion order doubles
#: as recency order (hits reinsert), so eviction is least-recently-used.
#: See :meth:`BitAlphabet.coerce`.
_INTERNED: Dict[Tuple[str, ...], "BitAlphabet"] = {}
_INTERNED_MAX = 16


class BitAlphabet:
    """A fixed bijection between letters and bit indices.

    Letters are sorted, so the mapping is deterministic: bit ``i`` is the
    ``i``-th letter in sorted order — the same convention as
    :func:`repro.logic.interpretation.all_interpretations`, which makes the
    mask enumeration order identical to the historical frozenset order.
    """

    __slots__ = ("letters", "_index", "_columns", "_lows", "_layers", "_full")

    def __init__(self, letters: Iterable[str]) -> None:
        if isinstance(letters, BitAlphabet):
            letters = letters.letters
        self.letters: Tuple[str, ...] = tuple(sorted(set(letters)))
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.letters)
        }
        self._columns: Dict[int, int] = {}
        self._lows: Optional[List[int]] = None
        self._layers: Optional[List[int]] = None
        self._full: Optional[int] = None

    @classmethod
    def coerce(cls, letters: "BitAlphabet | Iterable[str]") -> "BitAlphabet":
        """Reuse an existing instance, interning fresh letter sets.

        The memoised truth-table building blocks (columns, complement
        masks, popcount layers, the all-ones table) only pay off when the
        *same* instance is reused across operator calls, but the hot paths
        construct the alphabet from raw letter iterables on every revision.
        Interning by letter tuple turns those reconstructions into cache
        hits; the LRU bound keeps a pathological stream of distinct
        alphabets from pinning ``O(n * 2^n)``-bit memos alive (each
        interned 20-letter alphabet can lazily hold several MiB of
        columns, complement masks and popcount layers).
        """
        if isinstance(letters, BitAlphabet):
            return letters
        key = tuple(sorted(set(letters)))
        cached = _INTERNED.get(key)
        if cached is None:
            cached = cls(key)
        else:
            # Refresh recency: insertion order doubles as the LRU order.
            del _INTERNED[key]
        _INTERNED[key] = cached
        while len(_INTERNED) > _INTERNED_MAX:
            _INTERNED.pop(next(iter(_INTERNED)))
        return cached

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.letters)

    def __iter__(self) -> Iterator[str]:
        return iter(self.letters)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitAlphabet):
            return NotImplemented
        return self.letters == other.letters

    def __hash__(self) -> int:
        return hash(self.letters)

    def __repr__(self) -> str:
        return f"BitAlphabet({list(self.letters)!r})"

    # -- letter/mask conversions --------------------------------------------

    def bit(self, name: str) -> int:
        """The bit index of ``name`` (raises ``ValueError`` if foreign)."""
        try:
            return self._index[name]
        except KeyError:
            raise ValueError(
                f"letter {name!r} outside alphabet {list(self.letters)}"
            ) from None

    def mask_of(self, model: Iterable[str]) -> int:
        """Pack an interpretation (iterable of true letters) into a mask."""
        mask = 0
        for name in model:
            mask |= 1 << self.bit(name)
        return mask

    def set_of(self, mask: int) -> FrozenSet[str]:
        """Unpack a mask into the paper's frozenset-of-letters form."""
        letters = self.letters
        out = []
        while mask:
            low = mask & -mask
            out.append(letters[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    @property
    def universe(self) -> int:
        """The mask with every letter true."""
        return (1 << len(self.letters)) - 1

    @property
    def table_bits(self) -> int:
        """Width of a truth table over this alphabet: ``2^n``."""
        return 1 << len(self.letters)

    @property
    def full_table(self) -> int:
        """The all-ones truth table (the valid formula), memoised —
        rebuilding a fresh ``2^n``-bit integer on every access was a
        measurable cost inside the operator hot loops."""
        if self._full is None:
            self._full = (1 << self.table_bits) - 1
        return self._full

    def all_masks(self) -> range:
        """Every interpretation over the alphabet, in mask order."""
        return range(self.table_bits)

    # -- truth-table building blocks ----------------------------------------

    def column(self, name: str) -> int:
        """The truth-table column of letter ``name``.

        Bit ``j`` of the column is set iff bit ``i`` of ``j`` is set (where
        ``i`` is the letter's index): the periodic pattern of ``2^i`` zeros
        followed by ``2^i`` ones, tiled across ``2^n`` bits by doubling.
        """
        i = self.bit(name)
        cached = self._columns.get(i)
        if cached is not None:
            return cached
        half = 1 << i
        block = ((1 << half) - 1) << half
        width = half << 1
        total = self.table_bits
        while width < total:
            block |= block << width
            width <<= 1
        self._columns[i] = block
        return block

    def _low_masks(self) -> List[int]:
        """For each bit ``i``, the table positions whose mask has bit ``i``
        clear (complement of the letter's column)."""
        if self._lows is None:
            full = self.full_table
            self._lows = [
                full ^ self.column(self.letters[i])
                for i in range(len(self.letters))
            ]
        return self._lows

    def popcount_layers(self) -> List[int]:
        """``layers[k]``: the table of all masks with popcount ``k``.

        Built by the Pascal-triangle recurrence over bits: adding letter
        ``i`` either leaves a mask alone or shifts it up by ``2^i`` table
        positions while raising its popcount by one.
        """
        if self._layers is None:
            layers = [1]
            for i in range(len(self.letters)):
                shift = 1 << i
                grown = [layers[0]]
                for k in range(1, len(layers)):
                    grown.append(layers[k] | (layers[k - 1] << shift))
                grown.append(layers[-1] << shift)
                layers = grown
            self._layers = layers
        return self._layers


def truth_table(formula: Formula, alphabet: "BitAlphabet | Iterable[str]") -> int:
    """Compile ``formula`` to its ``2^n``-bit truth-table column.

    Bit ``j`` of the result is the formula's value under the interpretation
    with mask ``j``.  Connectives map to big-int operations (``∧ → &``,
    ``∨ → |``, ``¬ → ^ full``), so one expression evaluates the formula on
    every interpretation at once — this is the bit-parallel replacement for
    ``2^n`` calls to :meth:`Formula.evaluate`.

    Every letter of the formula must belong to the alphabet.
    """
    alphabet = BitAlphabet.coerce(alphabet)
    full = alphabet.full_table
    memo: Dict[int, int] = {}

    def walk(node: Formula) -> int:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Var):
            result = alphabet.column(node.name)
        elif isinstance(node, Not):
            result = walk(node.operand) ^ full
        elif isinstance(node, And):
            result = full
            for operand in node.operands:
                result &= walk(operand)
                if not result:
                    break
        elif isinstance(node, Or):
            result = 0
            for operand in node.operands:
                result |= walk(operand)
                if result == full:
                    break
        elif isinstance(node, Implies):
            result = (walk(node.antecedent) ^ full) | walk(node.consequent)
        elif isinstance(node, Iff):
            result = walk(node.left) ^ walk(node.right) ^ full
        elif isinstance(node, Xor):
            result = walk(node.left) ^ walk(node.right)
        elif isinstance(node, _Constant):
            result = full if node.value else 0
        else:
            raise TypeError(f"cannot compile {type(node).__name__} to a truth table")
        memo[id(node)] = result
        return result

    return walk(formula)


def evaluate_mask(
    formula: Formula, mask: int, alphabet: "BitAlphabet | Iterable[str]"
) -> bool:
    """Evaluate ``formula`` on a packed interpretation mask.

    The mask-level counterpart of :meth:`Formula.evaluate`: letter lookups
    are bit tests instead of frozenset probes, so callers holding mask
    carriers (the sparse tier, the incremental-carrier re-check) never
    unpack an Interpretation just to ask a truth value.  For whole
    carriers at once use :func:`repro.logic.sparse.evaluate_formula`,
    which vectorises the same recursion over the column blocks.
    """
    alphabet = BitAlphabet.coerce(alphabet)

    def walk(node: Formula) -> bool:
        if isinstance(node, Var):
            return bool(mask >> alphabet.bit(node.name) & 1)
        if isinstance(node, Not):
            return not walk(node.operand)
        if isinstance(node, And):
            return all(walk(operand) for operand in node.operands)
        if isinstance(node, Or):
            return any(walk(operand) for operand in node.operands)
        if isinstance(node, Implies):
            return not walk(node.antecedent) or walk(node.consequent)
        if isinstance(node, Iff):
            return walk(node.left) == walk(node.right)
        if isinstance(node, Xor):
            return walk(node.left) != walk(node.right)
        if isinstance(node, _Constant):
            return node.value
        raise TypeError(f"cannot evaluate {type(node).__name__} on a mask")

    return walk(formula)


# ---------------------------------------------------------------------------
# Mask-list operations (Level 1) — work at any alphabet size
# ---------------------------------------------------------------------------


def min_subset_masks(masks: Iterable[int]) -> List[int]:
    """Inclusion-minimal elements of a family of masks.

    Size-sorted submask pruning: visit candidates in popcount order; a
    candidate is minimal iff no already-accepted (hence no smaller) mask is
    a submask of it.  Equal-popcount masks can only be submasks when equal,
    which deduplication rules out, so checking the accepted antichain alone
    is sound.
    """
    unique = sorted(set(masks), key=lambda m: m.bit_count())
    minimal: List[int] = []
    for candidate in unique:
        for accepted in minimal:
            if accepted & candidate == accepted:
                break
        else:
            minimal.append(candidate)
    return minimal


def max_subset_masks(masks: Iterable[int]) -> List[int]:
    """Inclusion-maximal elements of a family of masks (mirror pruning)."""
    unique = sorted(set(masks), key=lambda m: m.bit_count(), reverse=True)
    maximal: List[int] = []
    for candidate in unique:
        for accepted in maximal:
            if accepted & candidate == candidate:
                break
        else:
            maximal.append(candidate)
    return maximal


def min_cardinality_masks(masks: Iterable[int]) -> int:
    """Minimum popcount over a non-empty family, short-circuiting at 0."""
    best: Optional[int] = None
    for mask in masks:
        count = mask.bit_count()
        if count == 0:
            return 0
        if best is None or count < best:
            best = count
    if best is None:
        raise ValueError("min_cardinality_masks of an empty family")
    return best


# ---------------------------------------------------------------------------
# Truth-table operations (Level 2) — bit-parallel over all 2^n interpretations
# ---------------------------------------------------------------------------


def table_of_masks(masks: Iterable[int]) -> int:
    """The truth table (characteristic big-int) of a set of masks."""
    table = 0
    for mask in masks:
        table |= 1 << mask
    return table


def xor_translate_table(table: int, mask: int, alphabet: BitAlphabet) -> int:
    """The table of ``{ j ^ mask : j ∈ table }``.

    XOR by a constant permutes the ``2^n`` table positions; per set bit of
    ``mask`` it is a swap of the two half-periods, i.e. two shifts and a
    merge.  This computes every symmetric difference ``M △ N`` against a
    fixed ``M`` in ``popcount(mask) · O(2^n/w)`` word operations.
    """
    lows = alphabet._low_masks()
    while mask:
        low_bit = mask & -mask
        i = low_bit.bit_length() - 1
        half = 1 << i
        low = lows[i]
        table = ((table >> half) & low) | ((table & low) << half)
        mask ^= low_bit
    return table


def upward_closure_table(table: int, alphabet: BitAlphabet) -> int:
    """All supersets (including the elements themselves) of a set of masks.

    One subset-sum pass per bit: a mask gains bit ``i`` by moving up
    ``2^i`` table positions; a single sweep over the bits reaches every
    superset because added bits commute.
    """
    lows = alphabet._low_masks()
    for i in range(len(alphabet)):
        table |= (table & lows[i]) << (1 << i)
    return table


def minimal_elements_table(table: int, alphabet: BitAlphabet) -> int:
    """The inclusion-minimal elements of a set of masks, as a table.

    A mask is non-minimal iff it is a *strict* superset of some element:
    take every one-bit extension of the set, close it upward, and subtract.
    ``2n`` big-int operations total — the fully bit-parallel counterpart of
    :func:`min_subset_masks`.
    """
    lows = alphabet._low_masks()
    strict = 0
    for i in range(len(alphabet)):
        strict |= (table & lows[i]) << (1 << i)
    strict = upward_closure_table(strict, alphabet)
    return table & ~strict


def neighbors_table(table: int, alphabet: BitAlphabet) -> int:
    """All masks at Hamming distance exactly 1 from some element."""
    lows = alphabet._low_masks()
    result = 0
    for i in range(len(alphabet)):
        half = 1 << i
        low = lows[i]
        result |= ((table >> half) & low) | ((table & low) << half)
    return result


def exists_table(table: int, names: Iterable[str], alphabet: BitAlphabet) -> int:
    """Existentially quantify the given letters out of a truth table.

    After smoothing letter ``i``, position ``j`` is set iff ``j`` or
    ``j ^ 2^i`` was — i.e. some assignment of the quantified letters
    reaches a model.  Used to project a model table onto a sub-alphabet
    without enumerating models (one swap-and-OR per quantified letter).
    """
    lows = alphabet._low_masks()
    for name in names:
        i = alphabet.bit(name)
        half = 1 << i
        low = lows[i]
        table |= ((table >> half) & low) | ((table & low) << half)
    return table


def min_hamming_distance_tables(
    left: int, right: int, alphabet: BitAlphabet
) -> Tuple[int, int]:
    """``(k, ball)``: the minimum Hamming distance between two non-empty
    model tables, and the radius-``k`` ball around ``left``.

    Grows the ball one ring at a time with single-bit flips; ``ball & right``
    is then exactly the elements of ``right`` at distance ``k`` from
    ``left`` (nothing closer exists by minimality).
    """
    if not left or not right:
        raise ValueError("min Hamming distance of an empty model table")
    ball = left
    distance = 0
    while not ball & right:
        ball |= neighbors_table(ball, alphabet)
        distance += 1
        if distance > len(alphabet):
            raise AssertionError("Hamming ball failed to cover the space")
    return distance, ball


# ---------------------------------------------------------------------------
# BitModelSet
# ---------------------------------------------------------------------------


class BitModelSet:
    """An immutable set of interpretations in mask form over a BitAlphabet.

    This is the engine-level counterpart of ``frozenset[frozenset[str]]``.
    The set carries up to three interchangeable encodings, each materialised
    lazily from whichever one it was built with:

    * :attr:`masks` — frozenset of packed ints (the Level-1 view);
    * :meth:`table` — the ``2^n``-bit characteristic big-int (Level 2);
    * :meth:`sharded` — the sharded table (Level 3);
    * :meth:`sparse` — the sorted model-mask carrier (Level 4,
      :class:`repro.logic.sparse.SparseModelSet`).

    Sharded- and sparse-tier results stay in carrier form until a caller
    actually asks for masks: counting, membership and emptiness never
    force the — potentially multi-million-element — frozenset into
    existence.
    """

    __slots__ = ("alphabet", "_masks", "_table", "_sharded", "_sparse", "_hash")

    def __init__(
        self,
        alphabet: "BitAlphabet | Iterable[str]",
        masks: Iterable[int] = (),
    ) -> None:
        self.alphabet = BitAlphabet.coerce(alphabet)
        self._masks: Optional[FrozenSet[int]] = (
            masks if isinstance(masks, frozenset) else frozenset(masks)
        )
        self._table: Optional[int] = None
        self._sharded = None
        self._sparse = None
        self._hash: Optional[int] = None
        if self._masks:
            universe = self.alphabet.universe
            for mask in self._masks:
                if mask < 0 or mask & ~universe:
                    raise ValueError(
                        f"mask {mask:#x} outside the {len(self.alphabet)}-letter alphabet"
                    )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_interpretations(
        cls,
        alphabet: "BitAlphabet | Iterable[str]",
        models: Iterable[Iterable[str]],
    ) -> "BitModelSet":
        """Pack frozenset-style interpretations into masks."""
        bit_alphabet = BitAlphabet.coerce(alphabet)
        return cls(bit_alphabet, (bit_alphabet.mask_of(m) for m in models))

    @classmethod
    def _lazy(cls, alphabet: "BitAlphabet | Iterable[str]") -> "BitModelSet":
        instance = cls.__new__(cls)
        instance.alphabet = BitAlphabet.coerce(alphabet)
        instance._masks = None
        instance._table = None
        instance._sharded = None
        instance._sparse = None
        instance._hash = None
        return instance

    @classmethod
    def from_table(
        cls, alphabet: "BitAlphabet | Iterable[str]", table: int
    ) -> "BitModelSet":
        """Build from a truth table; the mask set materialises on demand."""
        instance = cls._lazy(alphabet)
        if table < 0 or table >> instance.alphabet.table_bits:
            raise ValueError(
                f"table wider than 2^{len(instance.alphabet)} bits"
            )
        instance._table = table
        return instance

    @classmethod
    def from_sharded(
        cls, alphabet: "BitAlphabet | Iterable[str]", sharded
    ) -> "BitModelSet":
        """Build from a :class:`repro.logic.shards.ShardedTable` (Level 3)."""
        instance = cls._lazy(alphabet)
        if sharded.alphabet != instance.alphabet:
            raise ValueError("sharded table ranges over a different alphabet")
        instance._sharded = sharded
        return instance

    @classmethod
    def from_sparse(
        cls, alphabet: "BitAlphabet | Iterable[str]", sparse
    ) -> "BitModelSet":
        """Build from a :class:`repro.logic.sparse.SparseModelSet` (Level 4)."""
        instance = cls._lazy(alphabet)
        if sparse.alphabet != instance.alphabet:
            raise ValueError("sparse model set ranges over a different alphabet")
        instance._sparse = sparse
        return instance

    @classmethod
    def from_formula(
        cls, formula: Formula, alphabet: "BitAlphabet | Iterable[str]"
    ) -> "BitModelSet":
        """The model set of ``formula`` by bit-parallel truth-table sweep.

        Requires the formula's letters to lie inside the alphabet and the
        alphabet to be small enough for the table encoding; callers wanting
        the sharded tier or the SAT fallback should use
        :func:`repro.sat.bit_models` instead.
        """
        bit_alphabet = BitAlphabet.coerce(alphabet)
        if len(bit_alphabet) > _TABLE_MAX_LETTERS:
            raise ValueError(
                f"{len(bit_alphabet)} letters exceed the big-int table "
                f"cutoff ({_TABLE_MAX_LETTERS}); use repro.sat.bit_models, "
                f"which dispatches over all four tiers (sharded bitplanes, "
                f"sparse model sets, SAT enumeration)"
            )
        return cls.from_table(bit_alphabet, truth_table(formula, bit_alphabet))

    # -- views --------------------------------------------------------------

    @property
    def masks(self) -> FrozenSet[int]:
        """The packed-int mask set (materialised lazily from carriers)."""
        if self._masks is None:
            if self._table is not None:
                self._masks = frozenset(iter_set_bits(self._table))
            elif self._sharded is not None:
                self._masks = frozenset(self._sharded.iter_set_bits())
            elif self._sparse is not None:
                self._masks = frozenset(self._sparse.iter_masks())
            else:  # pragma: no cover - _lazy always sets one encoding
                self._masks = frozenset()
        return self._masks

    def table(self) -> int:
        """The characteristic ``2^n``-bit integer (lazily cached).

        Callers on sparse-tier alphabets should stay on :meth:`sparse` —
        materialising a ``2^n``-bit table past the shard cutoff defeats
        the point of the density-proportional carrier.
        """
        if self._table is None:
            if self._sharded is not None:
                self._table = self._sharded.to_int()
            else:
                self._table = table_of_masks(self.masks)
        return self._table

    def sharded(self):
        """The Level-3 sharded table (lazily cached)."""
        if self._sharded is None:
            from .shards import ShardedTable

            if self._table is not None:
                self._sharded = ShardedTable.from_int(self.alphabet, self._table)
            else:
                self._sharded = ShardedTable.from_masks(self.alphabet, self.masks)
        return self._sharded

    def sparse(self):
        """The Level-4 sparse carrier (lazily cached).

        Raises :class:`repro.logic.sparse.SparseSpill` when the set
        exceeds the live ``shards.SPARSE_MAX_MODELS`` budget — the tier
        dispatch only routes bounded-density sets here.
        """
        if self._sparse is None:
            from .sparse import SparseModelSet

            self._sparse = SparseModelSet.from_masks(
                self.alphabet, self.iter_masks()
            )
        return self._sparse

    def iter_masks(self) -> Iterator[int]:
        """Stream the masks without forcing the frozenset when a carrier
        encoding is present (ascending order in that case)."""
        if self._masks is not None:
            return iter(self._masks)
        if self._table is not None:
            return iter_set_bits(self._table)
        if self._sharded is not None:
            return self._sharded.iter_set_bits()
        return self._sparse.iter_masks()

    def count(self) -> int:
        """Model count — a popcount when only a table encoding exists."""
        if self._masks is not None:
            return len(self._masks)
        if self._table is not None:
            return self._table.bit_count()
        if self._sharded is not None:
            return self._sharded.popcount()
        return self._sparse.count()

    def to_frozensets(self) -> FrozenSet[FrozenSet[str]]:
        """Unpack to the paper's frozenset-of-frozensets representation."""
        set_of = self.alphabet.set_of
        return frozenset(set_of(mask) for mask in self.masks)

    # -- set protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        if self._masks is not None:
            return bool(self._masks)
        if self._table is not None:
            return bool(self._table)
        if self._sharded is not None:
            return self._sharded.any()
        return self._sparse.any()

    def __iter__(self) -> Iterator[int]:
        return self.iter_masks()

    def __contains__(self, mask: object) -> bool:
        if not isinstance(mask, int):
            return False
        if self._masks is not None:
            return mask in self._masks
        if mask < 0 or mask > self.alphabet.universe:
            return False
        if self._table is not None:
            return bool(self._table >> mask & 1)
        if self._sharded is not None:
            return self._sharded.get_bit(mask)
        return mask in self._sparse

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitModelSet):
            return NotImplemented
        if self.alphabet != other.alphabet:
            return False
        if self._masks is not None and other._masks is not None:
            return self._masks == other._masks
        if self._sparse is not None or other._sparse is not None:
            # Sparse sets live on large alphabets where a 2^n-bit table
            # must never be materialised; masks are budget-bounded.
            return frozenset(self.iter_masks()) == frozenset(other.iter_masks())
        return self.table() == other.table()

    def __hash__(self) -> int:
        # Stream an order-independent digest over the masks (splitmix-style
        # per-element mix, XOR-combined) instead of hashing the frozenset:
        # a sharded-tier set must be hashable without materialising
        # millions of masks, and the digest is encoding-agnostic, so equal
        # sets hash equal whichever representation they carry.  Cached —
        # the stream is O(model count).
        if self._hash is None:
            mix = 0xFFFFFFFFFFFFFFFF
            digest = 0
            for mask in self.iter_masks():
                x = (mask + 0x9E3779B97F4A7C15) & mix
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mix
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mix
                digest ^= x ^ (x >> 31)
            self._hash = hash((self.alphabet, digest))
        return self._hash

    def __repr__(self) -> str:
        if self.count() > 32:
            return (
                f"BitModelSet[{len(self.alphabet)} letters]"
                f"({self.count()} models)"
            )
        shown = ", ".join(
            "{" + ", ".join(sorted(m)) + "}"
            for m in sorted(self.to_frozensets(), key=sorted)
        )
        return f"BitModelSet[{len(self.alphabet)} letters]({shown})"

    # -- algebra ------------------------------------------------------------

    def with_masks(self, masks: Iterable[int]) -> "BitModelSet":
        """A sibling set over the same alphabet."""
        return BitModelSet(self.alphabet, masks)

    def intersection(self, other: "BitModelSet") -> "BitModelSet":
        self._check_same_alphabet(other)
        return BitModelSet(self.alphabet, self.masks & other.masks)

    def union(self, other: "BitModelSet") -> "BitModelSet":
        self._check_same_alphabet(other)
        return BitModelSet(self.alphabet, self.masks | other.masks)

    def min_subset(self) -> List[int]:
        """Inclusion-minimal masks (table path under the cutoff)."""
        if len(self.alphabet) <= _TABLE_MAX_LETTERS:
            minimal = minimal_elements_table(self.table(), self.alphabet)
            return list(iter_set_bits(minimal))
        return min_subset_masks(self.masks)

    def max_subset(self) -> List[int]:
        """Inclusion-maximal masks."""
        return max_subset_masks(self.masks)

    def extend_to(self, new_alphabet: "BitAlphabet | Iterable[str]") -> "BitModelSet":
        """Lift to a larger alphabet, new letters unconstrained.

        The lift is a shifted cross-product: each mask is re-indexed into
        the new bit positions, then OR-combined with every submask of the
        fresh-letter mask (the ``2^f`` free completions).
        """
        new_alphabet = BitAlphabet.coerce(new_alphabet)
        if new_alphabet.letters == self.alphabet.letters:
            return self
        positions = [new_alphabet.bit(name) for name in self.alphabet.letters]
        old_in_new = 0
        for position in positions:
            old_in_new |= 1 << position
        fresh = new_alphabet.universe ^ old_in_new
        translated: List[int] = []
        for mask in self.masks:
            moved = 0
            while mask:
                low = mask & -mask
                moved |= 1 << positions[low.bit_length() - 1]
                mask ^= low
            translated.append(moved)
        lifted: set[int] = set()
        submask = fresh
        while True:
            for moved in translated:
                lifted.add(moved | submask)
            if submask == 0:
                break
            submask = (submask - 1) & fresh
        return BitModelSet(new_alphabet, lifted)

    def restrict_to(self, alphabet: "BitAlphabet | Iterable[str]") -> "BitModelSet":
        """Project onto a sub-alphabet (``M|S``, paper Section 6)."""
        sub = BitAlphabet.coerce(alphabet)
        positions = [self.alphabet.bit(name) for name in sub.letters]
        projected: set[int] = set()
        for mask in self.masks:
            small = 0
            for new_bit, old_bit in enumerate(positions):
                if mask >> old_bit & 1:
                    small |= 1 << new_bit
            projected.add(small)
        return BitModelSet(sub, projected)

    def _check_same_alphabet(self, other: "BitModelSet") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError("model sets range over different alphabets")
