"""Theories: finite *sets* of propositional formulas.

Formula-based revision operators (GFUV, WIDTIO, Nebel — paper Section 2.2.1)
are sensitive to the syntactic presentation of the knowledge base: revising
``{a, b}`` and ``{a, a -> b}`` with ``¬b`` yields different results even
though the two theories are logically equivalent.  A :class:`Theory` is
therefore a first-class object distinct from its conjunction ``∧T``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Tuple, Union

from .formula import Formula, FormulaLike, as_formula, big_and
from .parser import parse


TheoryLike = Union["Theory", Formula, str, Iterable[FormulaLike]]


class Theory:
    """An ordered, duplicate-free finite set of formulas.

    Order is preserved for reproducibility (subset enumeration in the
    formula-based operators iterates in insertion order) but equality and
    hashing treat the theory as a set, as in the paper.
    """

    __slots__ = ("_formulas", "_fset")

    def __init__(self, formulas: Iterable[FormulaLike] = ()) -> None:
        seen: dict[Formula, None] = {}
        for raw in formulas:
            seen[as_formula(raw)] = None
        self._formulas: Tuple[Formula, ...] = tuple(seen)
        self._fset: FrozenSet[Formula] = frozenset(seen)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def of(*formulas: FormulaLike) -> "Theory":
        """Build a theory from formula arguments (strings are letter names)."""
        return Theory(formulas)

    @staticmethod
    def parse_many(*texts: str) -> "Theory":
        """Build a theory by parsing each argument as a formula."""
        return Theory(parse(text) for text in texts)

    @staticmethod
    def coerce(value: TheoryLike) -> "Theory":
        """Coerce a theory, single formula, letter name, or iterable."""
        if isinstance(value, Theory):
            return value
        if isinstance(value, (Formula, str)):
            return Theory([value])
        return Theory(value)

    # -- set protocol ---------------------------------------------------------

    def __iter__(self) -> Iterator[Formula]:
        return iter(self._formulas)

    def __len__(self) -> int:
        return len(self._formulas)

    def __contains__(self, item: object) -> bool:
        return item in self._fset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Theory):
            return NotImplemented
        return self._fset == other._fset

    def __hash__(self) -> int:
        return hash(self._fset)

    def __repr__(self) -> str:
        inner = ", ".join(str(formula) for formula in self._formulas)
        return "Theory{" + inner + "}"

    def formulas(self) -> Tuple[Formula, ...]:
        """The member formulas in insertion order."""
        return self._formulas

    # -- theory operations ----------------------------------------------------

    def conjunction(self) -> Formula:
        """``∧T`` — the conjunction of all member formulas (TRUE if empty)."""
        return big_and(self._formulas)

    def variables(self) -> FrozenSet[str]:
        """``V(T)`` — all letters occurring in the theory."""
        result: set[str] = set()
        for formula in self._formulas:
            result |= formula.variables()
        return frozenset(result)

    def size(self) -> int:
        """``|T|`` — total number of variable occurrences."""
        return sum(formula.size() for formula in self._formulas)

    def union(self, other: TheoryLike) -> "Theory":
        """``T ∪ T'`` preserving this theory's order first."""
        other_theory = Theory.coerce(other)
        return Theory(list(self._formulas) + list(other_theory._formulas))

    def intersection(self, other: TheoryLike) -> "Theory":
        """``T ∩ T'`` as sets of formulas."""
        other_theory = Theory.coerce(other)
        return Theory(f for f in self._formulas if f in other_theory._fset)

    def without(self, other: TheoryLike) -> "Theory":
        """``T \\ T'`` as sets of formulas."""
        other_theory = Theory.coerce(other)
        return Theory(f for f in self._formulas if f not in other_theory._fset)

    def subsets(self) -> Iterator["Theory"]:
        """All ``2^|T|`` sub-theories, *largest first* (so that the maximal
        consistent subset computation can prune early)."""
        members = self._formulas
        count = len(members)
        masks = sorted(range(1 << count), key=lambda m: -bin(m).count("1"))
        for mask in masks:
            yield Theory(members[i] for i in range(count) if mask >> i & 1)
