"""Immutable propositional-formula AST.

This module is the foundation of the whole reproduction.  It follows the
conventions of Section 2 of the paper:

* an *interpretation* (model) is identified with the set of letters mapped to
  true (see :mod:`repro.logic.interpretation`);
* the *size* ``|W|`` of a formula is the number of distinct *occurrences* of
  propositional variables in it (paper, Section 2: "the number of distinct
  occurrences of propositional variables in W");
* ``P[X/Y]`` denotes simultaneous substitution of the letters ``X`` by the
  formulas ``Y`` (paper, Section 2) — implemented by :meth:`Formula.substitute`;
* the connectives used by the paper are negation, conjunction, disjunction,
  implication ``x -> y`` (shorthand for ``¬x ∨ y``), equivalence ``x ≡ y`` and
  non-equivalence ``x ≢ y`` (xor).

Formulas are hash-consed-ish immutable trees.  ``And``/``Or`` are n-ary.
Convenience constructors (:func:`land`, :func:`lor`, ...) flatten nested
connectives and fold constants, which keeps the representation small without
changing logical content.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple, Union


class Formula:
    """Base class of all propositional formulas.

    Instances are immutable and hashable; equality is structural.  All
    user-facing construction should go through :func:`var`, :func:`land`,
    :func:`lor`, :func:`lnot`, :func:`implies`, :func:`iff`, :func:`xor`
    or the operator overloads (``&``, ``|``, ``~``, ``>>`` for implication,
    ``^`` for xor).
    """

    __slots__ = ("_hash", "_vars", "_size")

    # -- construction -----------------------------------------------------

    def __init__(self) -> None:
        self._hash: int | None = None
        self._vars: FrozenSet[str] | None = None
        self._size: int | None = None

    # -- operator overloads ------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return implies(self, other)

    def __xor__(self, other: "Formula") -> "Formula":
        return xor(self, other)

    # -- structural protocol ------------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Formula):
            return NotImplemented
        if type(self) is not type(other):
            return False
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__, self._key()))
        return self._hash

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._key()!r})"

    def __str__(self) -> str:
        from .printer import to_str

        return to_str(self)

    # -- core queries -------------------------------------------------------

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas (empty for atoms and constants)."""
        return ()

    def variables(self) -> FrozenSet[str]:
        """The alphabet ``V(F)``: set of letters occurring in the formula."""
        if self._vars is None:
            acc: set[str] = set()
            stack: list[Formula] = [self]
            while stack:
                node = stack.pop()
                if isinstance(node, Var):
                    acc.add(node.name)
                else:
                    stack.extend(node.children())
            self._vars = frozenset(acc)
        return self._vars

    def size(self) -> int:
        """Paper's size measure ``|W|``: number of variable *occurrences*."""
        if self._size is None:
            total = 0
            stack: list[Formula] = [self]
            while stack:
                node = stack.pop()
                if isinstance(node, Var):
                    total += 1
                else:
                    stack.extend(node.children())
            self._size = total
        return self._size

    def node_count(self) -> int:
        """Number of AST nodes — a secondary size measure used in benches."""
        total = 0
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children())
        return total

    def evaluate(self, model: Iterable[str]) -> bool:
        """Evaluate under the interpretation that makes exactly ``model`` true.

        ``model`` is any iterable of letter names (the set mapped to true);
        letters of the formula not listed are false, mirroring the paper's
        identification of interpretations with sets of letters.
        """
        true_set = model if isinstance(model, (set, frozenset)) else frozenset(model)
        return self._eval(true_set)

    def _eval(self, true_set) -> bool:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Formula"]) -> "Formula":
        """Simultaneous substitution ``P[X/Y]`` (paper, Section 2).

        Every occurrence of a letter ``x`` in ``mapping`` is replaced by
        ``mapping[x]`` *simultaneously* — replacements are not re-substituted.
        """
        if not mapping:
            return self
        return self._subst(dict(mapping))

    def _subst(self, mapping: Dict[str, "Formula"]) -> "Formula":
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        """Substitution restricted to letter-for-letter renaming."""
        return self.substitute({old: Var(new) for old, new in mapping.items()})

    def negate_letters(self, letters: Iterable[str]) -> "Formula":
        """The paper's ``F[H/H̄]``: replace each letter in ``letters`` by its
        negation (Section 4, Proposition 4.2)."""
        return self.substitute({name: Not(Var(name)) for name in letters})

    def iter_subformulas(self) -> Iterator["Formula"]:
        """Yield every node of the AST (pre-order, may repeat shared nodes)."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())


class _Constant(Formula):
    """Shared implementation of the two truth constants."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        super().__init__()
        self.value = value

    def _key(self) -> tuple:
        return (self.value,)

    def _eval(self, true_set) -> bool:
        return self.value

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return self


class Top(_Constant):
    """The valid formula ``⊤`` (paper's special letter for validity)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(True)


class Bottom(_Constant):
    """The unsatisfiable formula ``⊥`` (paper's special letter for falsity)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(False)


#: Module-level singletons — always use these rather than constructing anew.
TRUE: Top = Top()
FALSE: Bottom = Bottom()


class Var(Formula):
    """A propositional letter."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def _key(self) -> tuple:
        return (self.name,)

    def _eval(self, true_set) -> bool:
        return self.name in true_set

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return mapping.get(self.name, self)


class Not(Formula):
    """Negation ``¬F``."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula) -> None:
        super().__init__()
        self.operand = operand

    def _key(self) -> tuple:
        return (self.operand,)

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def _eval(self, true_set) -> bool:
        return not self.operand._eval(true_set)

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return Not(self.operand._subst(mapping))


class _Nary(Formula):
    """Shared implementation of the n-ary connectives ``And`` and ``Or``."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Formula]) -> None:
        super().__init__()
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def _key(self) -> tuple:
        return self.operands

    def children(self) -> Tuple[Formula, ...]:
        return self.operands


class And(_Nary):
    """N-ary conjunction.  ``And(())`` is valid (empty conjunction)."""

    __slots__ = ()

    def _eval(self, true_set) -> bool:
        return all(op._eval(true_set) for op in self.operands)

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return And(op._subst(mapping) for op in self.operands)


class Or(_Nary):
    """N-ary disjunction.  ``Or(())`` is unsatisfiable (empty disjunction)."""

    __slots__ = ()

    def _eval(self, true_set) -> bool:
        return any(op._eval(true_set) for op in self.operands)

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return Or(op._subst(mapping) for op in self.operands)


class Implies(Formula):
    """Implication ``F -> G`` (paper's shorthand for ``¬F ∨ G``)."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        super().__init__()
        self.antecedent = antecedent
        self.consequent = consequent

    def _key(self) -> tuple:
        return (self.antecedent, self.consequent)

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def _eval(self, true_set) -> bool:
        return (not self.antecedent._eval(true_set)) or self.consequent._eval(true_set)

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return Implies(self.antecedent._subst(mapping), self.consequent._subst(mapping))


class Iff(Formula):
    """Equivalence ``F ≡ G`` (paper's ``(F ∧ G) ∨ (¬F ∧ ¬G)``)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def _key(self) -> tuple:
        return (self.left, self.right)

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _eval(self, true_set) -> bool:
        return self.left._eval(true_set) == self.right._eval(true_set)

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return Iff(self.left._subst(mapping), self.right._subst(mapping))


class Xor(Formula):
    """Non-equivalence ``F ≢ G`` (paper's ``(F ∨ G) ∧ (¬F ∨ ¬G)``)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def _key(self) -> tuple:
        return (self.left, self.right)

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _eval(self, true_set) -> bool:
        return self.left._eval(true_set) != self.right._eval(true_set)

    def _subst(self, mapping: Dict[str, Formula]) -> Formula:
        return Xor(self.left._subst(mapping), self.right._subst(mapping))


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

FormulaLike = Union[Formula, str, bool]


def as_formula(value: FormulaLike) -> Formula:
    """Coerce a string (parsed as formula text), bool, or formula.

    A plain letter name like ``"a"`` parses to the letter itself, so string
    coercion is a strict generalisation of treating strings as atoms.
    """
    if isinstance(value, Formula):
        return value
    if isinstance(value, str):
        from .parser import parse

        return parse(value)
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise TypeError(f"cannot interpret {value!r} as a formula")


def var(name: str) -> Var:
    """Create the propositional letter ``name``."""
    return Var(name)


def variables(names: Iterable[str]) -> Tuple[Var, ...]:
    """Create a tuple of letters from an iterable of names."""
    return tuple(Var(name) for name in names)


def lnot(operand: FormulaLike) -> Formula:
    """Negation with constant folding and double-negation elimination."""
    operand = as_formula(operand)
    if operand is TRUE or isinstance(operand, Top):
        return FALSE
    if operand is FALSE or isinstance(operand, Bottom):
        return TRUE
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def land(*operands: FormulaLike) -> Formula:
    """N-ary conjunction; flattens nested ``And`` and folds constants.

    ``land()`` with no arguments is ``TRUE`` (the empty conjunction), matching
    the paper's convention that an empty theory is valid.
    """
    flat: list[Formula] = []
    for raw in operands:
        operand = as_formula(raw)
        if isinstance(operand, Bottom):
            return FALSE
        if isinstance(operand, Top):
            continue
        if isinstance(operand, And):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def lor(*operands: FormulaLike) -> Formula:
    """N-ary disjunction; flattens nested ``Or`` and folds constants."""
    flat: list[Formula] = []
    for raw in operands:
        operand = as_formula(raw)
        if isinstance(operand, Top):
            return TRUE
        if isinstance(operand, Bottom):
            continue
        if isinstance(operand, Or):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def implies(antecedent: FormulaLike, consequent: FormulaLike) -> Formula:
    """Implication with constant folding."""
    antecedent = as_formula(antecedent)
    consequent = as_formula(consequent)
    if isinstance(antecedent, Top):
        return consequent
    if isinstance(antecedent, Bottom):
        return TRUE
    if isinstance(consequent, Top):
        return TRUE
    if isinstance(consequent, Bottom):
        return lnot(antecedent)
    return Implies(antecedent, consequent)


def iff(left: FormulaLike, right: FormulaLike) -> Formula:
    """Equivalence with constant folding."""
    left = as_formula(left)
    right = as_formula(right)
    if isinstance(left, Top):
        return right
    if isinstance(right, Top):
        return left
    if isinstance(left, Bottom):
        return lnot(right)
    if isinstance(right, Bottom):
        return lnot(left)
    return Iff(left, right)


def xor(left: FormulaLike, right: FormulaLike) -> Formula:
    """Non-equivalence (exclusive or) with constant folding."""
    left = as_formula(left)
    right = as_formula(right)
    if isinstance(left, Bottom):
        return right
    if isinstance(right, Bottom):
        return left
    if isinstance(left, Top):
        return lnot(right)
    if isinstance(right, Top):
        return lnot(left)
    return Xor(left, right)


def literal(name: str, positive: bool) -> Formula:
    """The literal ``name`` or ``¬name``."""
    atom = Var(name)
    return atom if positive else Not(atom)


def cube(model: Iterable[str], alphabet: Iterable[str]) -> Formula:
    """The conjunction of literals pinning down ``model`` over ``alphabet``.

    The unique model (over ``alphabet``) of the returned formula is exactly
    the interpretation that makes ``model ∩ alphabet`` true and the rest of
    ``alphabet`` false.
    """
    true_set = frozenset(model)
    parts = [literal(name, name in true_set) for name in sorted(alphabet)]
    return land(*parts)


def big_and(formulas: Iterable[FormulaLike]) -> Formula:
    """Conjunction of an iterable (paper's ``∧T`` for a theory ``T``)."""
    return land(*formulas)


def big_or(formulas: Iterable[FormulaLike]) -> Formula:
    """Disjunction of an iterable."""
    return lor(*formulas)


def fresh_names(prefix: str, count: int, avoid: Iterable[str] = ()) -> list[str]:
    """Generate ``count`` letter names starting with ``prefix`` that do not
    collide with any name in ``avoid``.

    Compact constructions in the paper repeatedly need "new sets of letters
    one-to-one with X" (e.g. Y in Theorem 3.4, Z in Theorem 3.5); this helper
    manufactures them deterministically.
    """
    avoid_set = set(avoid)
    names: list[str] = []
    index = 0
    while len(names) < count:
        candidate = f"{prefix}{index}"
        if candidate not in avoid_set:
            names.append(candidate)
            avoid_set.add(candidate)
        index += 1
    return names
