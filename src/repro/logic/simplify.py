"""Light-weight formula simplification.

The rewrites here are purely local and equivalence-preserving: constant
folding, double-negation elimination, flattening, idempotence and
complement detection inside a single ``And``/``Or`` node.  They are used to
keep the compact constructions readable (the paper itself remarks after
Theorem 4.6 that "all representations can be simplified by omitting ...
disjuncts which are inconsistent with P").
"""

from __future__ import annotations

from .formula import (
    FALSE,
    TRUE,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    Xor,
    iff,
    implies,
    land,
    lnot,
    lor,
    xor,
)


def simplify(formula: Formula) -> Formula:
    """Bottom-up local simplification; logically equivalent to the input."""
    if isinstance(formula, (Var, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return lnot(simplify(formula.operand))
    if isinstance(formula, And):
        return _simplify_nary(formula, is_and=True)
    if isinstance(formula, Or):
        return _simplify_nary(formula, is_and=False)
    if isinstance(formula, Implies):
        return implies(simplify(formula.antecedent), simplify(formula.consequent))
    if isinstance(formula, Iff):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == right:
            return TRUE
        if left == lnot(right):
            return FALSE
        return iff(left, right)
    if isinstance(formula, Xor):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == right:
            return FALSE
        if left == lnot(right):
            return TRUE
        return xor(left, right)
    raise TypeError(f"unknown formula node {formula!r}")


def _simplify_nary(formula: Formula, is_and: bool) -> Formula:
    combine = land if is_and else lor
    absorbing = FALSE if is_and else TRUE
    seen: list[Formula] = []
    seen_set: set[Formula] = set()
    for child in formula.children():
        reduced = simplify(child)
        # combine() handles flattening/constants; collect for complement check.
        flattened = (
            reduced.children()
            if (is_and and isinstance(reduced, And))
            or (not is_and and isinstance(reduced, Or))
            else (reduced,)
        )
        for part in flattened:
            if part in seen_set:
                continue
            if lnot(part) in seen_set:
                return absorbing
            seen.append(part)
            seen_set.add(part)
    return combine(*seen)
