"""Level-3 sharded truth tables: numpy bitplanes with a pure-int fallback.

:mod:`repro.logic.bitmodels` stores a model set over ``n`` letters as one
``2^n``-bit Python integer.  That encoding hits a wall around 20 letters:
every AND/XOR re-materialises the whole big-int in one thread, so each
operation is a fresh multi-megabyte allocation executed under the GIL.
This module shards the same ``2^n`` table into fixed-width chunks so the
word-level work runs on hardware-friendly buffers:

* **numpy backend** — the table is a flat ``uint64`` bitplane (one machine
  word per 64 table positions).  Elementwise connectives are single
  vectorised calls, popcounts use ``np.bitwise_count``, and the structural
  transforms (XOR translation, subset-sum closures, Hamming rings) become
  strided slice operations on the word array;
* **pure-int backend** — when numpy is unavailable the table is a list of
  ``2^k``-bit integer shards (:data:`SHARD_BITS` wide).  Every primitive is
  implemented shard-wise, so no single integer ever exceeds the shard
  width, and the shard list is the unit of the multiprocessing map.

Both backends implement the same primitive set as the Level-2 big-int
encoding — formula compilation, ``& | ^ ~``, popcount rings,
:meth:`ShardedTable.xor_translate`, :meth:`ShardedTable.neighbors`,
:meth:`ShardedTable.minimal_elements`, :meth:`ShardedTable.min_hamming` and
existential letter smoothing — which is what lets the revision operators
run one selection rule over either tier (see
:mod:`repro.revision.model_based`).

**Parallel enumeration.**  Truth-table compilation is embarrassingly
parallel across shards: shard ``s`` only needs to know its base offset to
reconstruct every variable column.  :meth:`ShardedTable.from_formula`
therefore fans the shard ranges of large alphabets out over a
``multiprocessing`` pool (``processes=`` forces it; otherwise alphabets
with at least :data:`PARALLEL_MIN_LETTERS` letters and more than one CPU
opt in automatically), and :func:`map_shards` exposes the same shard-map
for ad-hoc per-shard work.

**Batched pointwise kernels.**  The pointwise revision operators
(Winslett, Forbus, Borgida) ask one question per model ``M`` of ``T``:
restrict the XOR-translated ``P`` table to its inclusion-minimal elements
(or its first popcount ring), translate back, union.  Computed one model
at a time that is ``~4n`` full bitplane passes *per model*;
:func:`pointwise_select` batches it three ways, picked by density:

* **mask kernels** — when the ``P`` table is sparse, the per-model work
  collapses onto the model *masks* (a ``(block, |P|)`` XOR/popcount matrix
  for the ring rule, a popcount-level antichain sweep for the minimal
  rule) and never touches the bitplane;
* **blocked bitplane kernels** — otherwise, blocks of T-models are
  translated into one ``(block, words)`` array and a single
  minimal/first-ring sweep runs over the whole block via numpy
  broadcasting (one vectorised call per bit instead of one per model);
* **parallel fan-out** — the blocks are mapped over a thread pool on the
  numpy backend (the vectorised ops release the GIL), and over the
  multiprocessing shard map on the pure-int backend (T-model ranges per
  process).  Worker count and block size come from the ``REPRO_PARALLEL``
  / ``REPRO_PARALLEL_BLOCK`` env knobs resolved by
  :func:`parallel_workers` / :func:`parallel_block`;
  ``REPRO_POINTWISE_BATCH=0`` disables batching entirely (the per-model
  reference path the benchmark harness compares against).

:func:`translate_union` applies the same batching to the other per-model
loop of the engine, the union of translates behind ``delta(T, P)`` and
Satoh's reachable set.

**Tier dispatch.**  :func:`tier` is the single decision point the engine
layers share, and since the sparse tier landed it is *density-aware*:
pass it a model-count bound alongside the alphabet size and it picks one
of **four** tiers —

* ``"table"`` — big-int truth tables, up to
  ``bitmodels._TABLE_MAX_LETTERS`` letters;
* ``"sharded"`` — this module, up to :data:`SHARD_MAX_LETTERS` (26 unless
  ``REPRO_SHARD_MAX_LETTERS`` says otherwise);
* ``"sparse"`` — the density-proportional model-mask engine of
  :mod:`repro.logic.sparse`, for alphabets past the shard cutoff (or past
  :data:`SPARSE_MIN_LETTERS`, when lowered) whose model-count bound fits
  the :data:`SPARSE_MAX_MODELS` budget (env ``REPRO_SPARSE_MAX_MODELS``;
  ``REPRO_SPARSE_TIER=0`` disables the tier);
* ``"masks"`` — SAT enumeration plus Level-1 mask lists, beyond all of
  the above.

Every cutoff is read live, so env/runtime overrides by tests and
benchmark harnesses are always honoured.  Without a model bound the
dispatch degrades to the historical three tiers (sparse needs a density
estimate — see :func:`repro.sat.interface.model_count_bound` for the
cheap structural bound + SAT-count probe that supplies one).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro import runtime as _runtime
from repro.runtime import faults as _faults
from repro.runtime import pool as _pool

from . import bitmodels as _bitmodels
from .bitmodels import BitAlphabet, iter_set_bits
from .formula import And, Formula, Iff, Implies, Not, Or, Var, Xor, _Constant

try:  # pragma: no cover - exercised via the CI matrix leg without numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):  # force the pure-int shard fallback
    _np = None

#: Width of one machine word in the numpy bitplane.
WORD_BITS = 64

#: Width (in bits) of one pure-int shard; must be a power of two >= 64.
SHARD_BITS = 1 << int(os.environ.get("REPRO_SHARD_BITS_LOG2", "16"))

#: Largest alphabet the sharded tier handles; beyond it the engine falls
#: back to SAT enumeration plus mask-list selection.  Raised 24 -> 26 once
#: the pointwise per-model loops were batched (bitplane memory was never
#: the wall; per-model loop time was).
SHARD_MAX_LETTERS = int(os.environ.get("REPRO_SHARD_MAX_LETTERS", "26"))

#: Alphabet size at which pure-int compilation fans out over processes.
PARALLEL_MIN_LETTERS = int(os.environ.get("REPRO_SHARD_PARALLEL_LETTERS", "22"))

#: Model budget of the sparse tier (:mod:`repro.logic.sparse`): the largest
#: model-set density the sorted-mask carrier accepts, both as the tier
#: eligibility bound and as the spill threshold for intermediate results
#: (a 2^20-mask carrier is 8 MiB at 64 letters — the same order as one
#: sharded bitplane; unions beyond it spill to the SAT mask loops).
#: Lives here — next to the other tier cutoffs — so :func:`tier` and the
#: sparse module read one live knob and never import each other in a cycle.
SPARSE_MAX_MODELS = int(os.environ.get("REPRO_SPARSE_MAX_MODELS", str(1 << 20)))

#: Smallest alphabet the sparse tier may serve; 0 means "just past the
#: shard cutoff" (the default: below the cutoff the bitplane tiers stay
#: authoritative, above it sparse takes every bounded-density workload).
#: Lower it (env ``REPRO_SPARSE_MIN_LETTERS``) to let low-density sets
#: skip the bitplanes below the cutoff too.
SPARSE_MIN_LETTERS = int(os.environ.get("REPRO_SPARSE_MIN_LETTERS", "0"))

#: Sparse tier on/off (env ``REPRO_SPARSE_TIER=0`` disables it, restoring
#: the pre-sparse three-tier dispatch).
SPARSE_TIER = os.environ.get("REPRO_SPARSE_TIER", "1") != "0"

#: Batched pointwise kernels on/off (env ``REPRO_POINTWISE_BATCH=0`` keeps
#: the per-model reference path; the perf harness flips this attribute to
#: time the pre-batching engine under identical workloads).
POINTWISE_BATCH = os.environ.get("REPRO_POINTWISE_BATCH", "1") != "0"

#: Word budget for one batched block buffer (16 MiB of uint64): the default
#: block size is however many T-model rows fit in it.
_BLOCK_BUDGET_WORDS = 1 << 21

#: Mask-kernel eligibility bounds: the sparse kernels materialise the P
#: masks, so they are capped both absolutely and against the bitplane cost
#: model (see :func:`pointwise_select`).
_RING_MASK_MAX = 1 << 16
_MIN_MASK_MAX = 1 << 14

#: Largest ``|table| * |masks|`` product routed to the pair-matrix union
#: kernel of :func:`translate_union` (4M pairs = one 32 MiB scratch array).
_MASK_PAIR_BUDGET = 1 << 22

#: For each bit index i < 6, the 64-bit mask of word positions whose bit i
#: is CLEAR (the within-word complement column, cf. BitAlphabet._low_masks).
LOW64: Tuple[int, ...] = tuple(
    sum(1 << b for b in range(64) if not b >> i & 1) for i in range(6)
)

#: For each popcount 0..6, the 64-bit mask of word positions with exactly
#: that popcount — the within-word slice of a Hamming ring.
PAT64: Tuple[int, ...] = tuple(
    sum(1 << b for b in range(64) if b.bit_count() == k) for k in range(7)
)

_WORD_FULL = (1 << WORD_BITS) - 1


def sparse_min_letters() -> int:
    """The live lower alphabet bound of the sparse tier (0 = cutoff + 1)."""
    return SPARSE_MIN_LETTERS or SHARD_MAX_LETTERS + 1


def tier(letter_count: int, model_bound: Optional[int] = None) -> str:
    """Which engine tier handles ``letter_count`` letters at this density.

    ``model_bound`` is an upper bound on the model counts involved (the
    caller's sets when already compiled, or the cheap CNF bound / SAT-count
    probe of :func:`repro.sat.interface.model_count_bound` before
    compiling); with it the dispatch is four-tier — ``"table"`` /
    ``"sharded"`` / ``"sparse"`` / ``"masks"`` — and bounded-density sets
    past the shard cutoff land on the density-proportional sparse engine
    instead of the SAT mask loops.  Without a bound the sparse tier is
    never chosen (its carrier must fit :data:`SPARSE_MAX_MODELS` models).

    Reads every cutoff at call time — ``bitmodels._TABLE_MAX_LETTERS``,
    :data:`SHARD_MAX_LETTERS`, :data:`SPARSE_MAX_MODELS`,
    :data:`SPARSE_MIN_LETTERS` and :data:`SPARSE_TIER` as they are *now*,
    not as they were at import — so env overrides
    (``REPRO_TABLE_MAX_LETTERS``, ``REPRO_SHARD_MAX_LETTERS``,
    ``REPRO_SPARSE_MAX_MODELS``, ``REPRO_SPARSE_MIN_LETTERS``,
    ``REPRO_SPARSE_TIER``) and runtime retargeting by tests and benchmark
    harnesses are always reported faithfully.

    **Degradation chain.**  The answer is the *preferred* tier, not a
    hard commitment: when a tier's compile or kernel exceeds its memory
    budget (a real ``MemoryError`` or a
    :class:`repro.runtime.MemoryBudgetExceeded` from an active
    :class:`repro.runtime.Budget`, or a
    :class:`repro.logic.sparse.SparseSpill`), the dispatch layers retry
    one tier down instead of crashing:

    * ``"sharded"`` compile OOM → ``"sparse"`` (when the model bound
      fits :data:`SPARSE_MAX_MODELS`) → ``"masks"``;
    * ``"sparse"`` spill → the dense bound-free tier for the alphabet
      (``"sharded"`` under the cutoff) → ``"masks"``;
    * ``"table"`` OOM → ``"masks"``.

    ``"masks"`` — the SAT mask loop — is the terminal tier: density
    proportional, no table allocation, always succeeds.  Demotions are
    recorded in :data:`repro.runtime.STATS` (``demotions`` plus
    per-edge ``demotions:<from>-><to>`` keys) and surface in the batch
    driver's ``tier_counts`` (see
    :func:`repro.revision.model_based._select_bits_tiered`).
    """
    if letter_count <= _bitmodels._TABLE_MAX_LETTERS:
        return "table"
    sparse_ok = (
        SPARSE_TIER
        and model_bound is not None
        and 0 <= model_bound <= SPARSE_MAX_MODELS
    )
    if letter_count <= SHARD_MAX_LETTERS:
        if sparse_ok and letter_count >= sparse_min_letters():
            return "sparse"
        return "sharded"
    return "sparse" if sparse_ok else "masks"


def _use_numpy(backend: Optional[str]) -> bool:
    if backend is None:
        return _np is not None
    if backend == "numpy":
        if _np is None:
            raise RuntimeError("numpy backend requested but numpy is unavailable")
        return True
    if backend == "int":
        return False
    raise ValueError(f"unknown shard backend {backend!r} (use 'numpy' or 'int')")


# ---------------------------------------------------------------------------
# Pure-int shard helpers
# ---------------------------------------------------------------------------

#: (bit index, shard bit-width) -> within-shard complement column, built by
#: the same doubling recurrence as BitAlphabet.column.
_SHARD_LOWS: Dict[Tuple[int, int], int] = {}

#: shard bit-width -> per-popcount within-shard ring masks.
_SHARD_RINGS: Dict[int, List[int]] = {}


def _shard_low(i: int, shard_bits: int) -> int:
    """Positions (within one ``shard_bits``-wide shard) whose bit ``i`` is
    clear; requires ``2^i < shard_bits``."""
    cached = _SHARD_LOWS.get((i, shard_bits))
    if cached is not None:
        return cached
    half = 1 << i
    block = (1 << half) - 1  # low half-period set
    width = half << 1
    while width < shard_bits:
        block |= block << width
        width <<= 1
    _SHARD_LOWS[(i, shard_bits)] = block
    return block


def _shard_rings(shard_bits: int) -> List[int]:
    """Within-shard popcount layers: ``rings[k]`` collects the offsets with
    popcount ``k`` (Pascal-triangle doubling, as BitAlphabet.popcount_layers)."""
    cached = _SHARD_RINGS.get(shard_bits)
    if cached is not None:
        return cached
    layers = [1]
    offset_bits = shard_bits.bit_length() - 1
    for i in range(offset_bits):
        shift = 1 << i
        grown = [layers[0]]
        for k in range(1, len(layers)):
            grown.append(layers[k] | (layers[k - 1] << shift))
        grown.append(layers[-1] << shift)
        layers = grown
    _SHARD_RINGS[shard_bits] = layers
    return layers


def _compile_shard_range(args) -> List[int]:
    """Worker for the multiprocessing shard map: compile ``formula`` on the
    shards ``start..stop`` (top-level so it pickles)."""
    formula, letters, start, stop, shard_bits = args
    alphabet = BitAlphabet(letters)
    return [
        _compile_one_shard(formula, alphabet, s, shard_bits)
        for s in range(start, stop)
    ]


def _compile_one_shard(
    formula: Formula, alphabet: BitAlphabet, shard_index: int, shard_bits: int
) -> int:
    """Evaluate ``formula`` on the ``shard_bits`` interpretations whose masks
    lie in ``[shard_index * shard_bits, (shard_index + 1) * shard_bits)``.

    Letters with ``2^i < shard_bits`` contribute the periodic within-shard
    column; higher letters are constant across the shard (their value is a
    bit of the shard's base offset).
    """
    full = (1 << shard_bits) - 1
    base = shard_index * shard_bits
    memo: Dict[int, int] = {}

    def column(name: str) -> int:
        i = alphabet.bit(name)
        if (1 << i) < shard_bits:
            return full ^ _shard_low(i, shard_bits)
        return full if base >> i & 1 else 0

    def walk(node: Formula) -> int:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Var):
            result = column(node.name)
        elif isinstance(node, Not):
            result = walk(node.operand) ^ full
        elif isinstance(node, And):
            result = full
            for operand in node.operands:
                result &= walk(operand)
                if not result:
                    break
        elif isinstance(node, Or):
            result = 0
            for operand in node.operands:
                result |= walk(operand)
                if result == full:
                    break
        elif isinstance(node, Implies):
            result = (walk(node.antecedent) ^ full) | walk(node.consequent)
        elif isinstance(node, Iff):
            result = walk(node.left) ^ walk(node.right) ^ full
        elif isinstance(node, Xor):
            result = walk(node.left) ^ walk(node.right)
        elif isinstance(node, _Constant):
            result = full if node.value else 0
        else:
            raise TypeError(f"cannot compile {type(node).__name__} to a truth table")
        memo[id(node)] = result
        return result

    return walk(formula)


def map_shards(
    function: Callable[[int], object],
    table: "ShardedTable",
    processes: Optional[int] = None,
) -> List[object]:
    """Apply a picklable per-shard function to every shard of ``table``.

    The generic multiprocessing shard map: shards are distributed over a
    process pool when ``processes`` asks for one (or the alphabet crosses
    :data:`PARALLEL_MIN_LETTERS` on a multi-core host); otherwise the map
    runs inline.  ``function`` receives each shard as a plain int.  The
    fan-out rides :func:`repro.runtime.pool.map_with_recovery` (dead
    workers are retried inline, no orphans on interrupt) and stays
    serial while a deadline governs (children cannot checkpoint).
    """
    shards = table.int_shards()
    workers = _pool_size(len(table.alphabet), processes)
    if not _runtime.allows_fanout():
        workers = 1
    if workers <= 1 or len(shards) <= 1:
        return [function(shard) for shard in shards]
    return _pool.map_with_recovery(
        function, shards, workers=workers, label="shard map"
    )


def _pool_size(letter_count: int, processes: Optional[int]) -> int:
    if processes is not None:
        return max(1, processes)
    if letter_count < PARALLEL_MIN_LETTERS:
        return 1
    return max(1, os.cpu_count() or 1)


def parallel_workers(letter_count: Optional[int] = None) -> int:
    """Worker count for the batched pointwise fan-out.

    ``REPRO_PARALLEL`` forces the count outright (``1`` means serial);
    without it, alphabets below :data:`PARALLEL_MIN_LETTERS` stay serial
    (fan-out overhead dwarfs the work) and larger ones use every CPU.
    Read at call time so harnesses can retarget without reimporting.
    """
    raw = os.environ.get("REPRO_PARALLEL", "")
    if raw:
        return max(1, int(raw))
    if letter_count is not None and letter_count < PARALLEL_MIN_LETTERS:
        return 1
    return max(1, os.cpu_count() or 1)


def parallel_block(nwords: int) -> int:
    """T-models per batched block for an ``nwords``-word bitplane.

    ``REPRO_PARALLEL_BLOCK`` forces the row count; the default packs as
    many rows as fit in :data:`_BLOCK_BUDGET_WORDS` (capped at 64 — past
    that the broadcasting gain has long since saturated).
    """
    raw = os.environ.get("REPRO_PARALLEL_BLOCK", "")
    if raw:
        return max(1, int(raw))
    return max(1, min(64, _BLOCK_BUDGET_WORDS // max(1, nwords)))


# ---------------------------------------------------------------------------
# ShardedTable
# ---------------------------------------------------------------------------


class ShardedTable:
    """A ``2^n``-bit truth table split into fixed-width shards.

    Instances are conceptually immutable: every operation returns a new
    table (internal buffers are reused only where the result owns them).
    Exactly one of the two storage fields is populated:

    * ``_words`` — numpy ``uint64`` bitplane (``2^n / 64`` words);
    * ``_shards`` — list of ``shard_bits``-wide Python ints.
    """

    __slots__ = ("alphabet", "_words", "_shards", "_shard_bits")

    def __init__(self, alphabet, words=None, shards=None, shard_bits=None):
        self.alphabet = BitAlphabet.coerce(alphabet)
        self._words = words
        self._shards = shards
        self._shard_bits = shard_bits

    # -- constructors -------------------------------------------------------

    @classmethod
    def _empty_like(cls, alphabet: BitAlphabet, backend: Optional[str],
                    shard_bits: Optional[int]) -> "ShardedTable":
        alphabet = BitAlphabet.coerce(alphabet)
        if _use_numpy(backend):
            nwords = max(1, alphabet.table_bits >> 6)
            _runtime.charge_words(nwords, "sharded bitplane allocation")
            return cls(alphabet, words=_np.zeros(nwords, dtype=_np.uint64))
        width = cls._int_shard_bits(alphabet, shard_bits)
        nshards = max(1, alphabet.table_bits // width)
        _runtime.charge_words(
            nshards * (width >> 6), "sharded int-shard allocation"
        )
        return cls(alphabet, shards=[0] * nshards, shard_bits=width)

    @staticmethod
    def _int_shard_bits(alphabet: BitAlphabet, shard_bits: Optional[int]) -> int:
        width = SHARD_BITS if shard_bits is None else shard_bits
        if width < WORD_BITS or width & (width - 1):
            raise ValueError(f"shard width must be a power of two >= {WORD_BITS}")
        return min(alphabet.table_bits, width) if alphabet.table_bits >= WORD_BITS \
            else alphabet.table_bits

    @classmethod
    def zeros(cls, alphabet, backend: Optional[str] = None,
              shard_bits: Optional[int] = None) -> "ShardedTable":
        return cls._empty_like(alphabet, backend, shard_bits)

    @classmethod
    def full(cls, alphabet, backend: Optional[str] = None,
             shard_bits: Optional[int] = None) -> "ShardedTable":
        table = cls._empty_like(alphabet, backend, shard_bits)
        if table._words is not None:
            table._words[:] = _np.uint64(_WORD_FULL)
            table._mask_top()
        else:
            shard_full = (1 << table._shard_bits) - 1
            table._shards = [shard_full] * len(table._shards)
        return table

    @classmethod
    def from_int(cls, alphabet, value: int, backend: Optional[str] = None,
                 shard_bits: Optional[int] = None) -> "ShardedTable":
        """Split a big-int truth table into shards."""
        table = cls._empty_like(alphabet, backend, shard_bits)
        bits = table.alphabet.table_bits
        if value < 0 or value >> bits:
            raise ValueError(f"table value wider than 2^{len(table.alphabet)} bits")
        if table._words is not None:
            nwords = len(table._words)
            data = value.to_bytes(nwords * 8, "little")
            table._words = _np.frombuffer(data, dtype="<u8").astype(
                _np.uint64, copy=True
            )
        else:
            width = table._shard_bits
            mask = (1 << width) - 1
            table._shards = [
                (value >> (s * width)) & mask for s in range(len(table._shards))
            ]
        return table

    @classmethod
    def from_masks(cls, alphabet, masks: Iterable[int],
                   backend: Optional[str] = None,
                   shard_bits: Optional[int] = None) -> "ShardedTable":
        table = cls._empty_like(alphabet, backend, shard_bits)
        if table._words is not None:
            words = table._words
            for mask in masks:
                words[mask >> 6] |= _np.uint64(1 << (mask & 63))
        else:
            width = table._shard_bits
            shards = table._shards
            for mask in masks:
                shards[mask // width] |= 1 << (mask % width)
        return table

    @classmethod
    def from_formula(cls, formula: Formula, alphabet,
                     backend: Optional[str] = None,
                     shard_bits: Optional[int] = None,
                     processes: Optional[int] = None) -> "ShardedTable":
        """Compile ``formula`` to its sharded truth table.

        numpy backend: every connective is one vectorised elementwise call
        over the word array (variable columns are synthesised per call —
        within-word patterns for the low six letters, word-index bit tests
        above them).  Pure-int backend: each shard compiles independently;
        shard ranges fan out over the crash-tolerant pool of
        :func:`repro.runtime.pool.map_with_recovery` for alphabets at
        or above :data:`PARALLEL_MIN_LETTERS` (or when ``processes`` is
        given explicitly), serial while a deadline governs.

        A compile that overflows the active memory budget (or trips the
        ``shard-compile-oom`` injection point) raises ``MemoryError``;
        the dispatch layers catch it and retry one tier down — see the
        degradation chain in :func:`tier`.
        """
        alphabet = BitAlphabet.coerce(alphabet)
        extra = formula.variables() - set(alphabet.letters)
        if extra:
            raise ValueError(
                f"formula letters {sorted(extra)} outside alphabet"
            )
        with _obs.span(
            "shards.compile", letters=len(alphabet),
            backend="numpy" if _use_numpy(backend) else "int",
        ):
            return cls._from_formula_impl(
                formula, alphabet, backend, shard_bits, processes
            )

    @classmethod
    def _from_formula_impl(cls, formula, alphabet, backend,
                           shard_bits, processes):
        if _faults.ACTIVE and _faults.trip("shard-compile-oom") is not None:
            raise MemoryError(
                f"injected shard-compile-oom fault for {len(alphabet)} letters"
            )
        if _use_numpy(backend):
            _runtime.charge_words(
                max(1, alphabet.table_bits >> 6), "sharded bitplane compile"
            )
            return cls(alphabet, words=_numpy_compile(formula, alphabet))
        width = cls._int_shard_bits(alphabet, shard_bits)
        nshards = max(1, alphabet.table_bits // width)
        _runtime.charge_words(
            nshards * (width >> 6), "sharded int-shard compile"
        )
        workers = _pool_size(len(alphabet), processes)
        if not _runtime.allows_fanout():
            workers = 1
        if workers <= 1 or nshards <= 1:
            shards = []
            for s in range(nshards):
                _runtime.checkpoint()
                shards.append(_compile_one_shard(formula, alphabet, s, width))
        else:
            chunk = (nshards + workers - 1) // workers
            jobs = [
                (formula, alphabet.letters, start, min(start + chunk, nshards), width)
                for start in range(0, nshards, chunk)
            ]
            shards = [
                shard
                for block in _pool.map_with_recovery(
                    _compile_shard_range, jobs, workers=len(jobs),
                    label="shard compile fan-out",
                )
                for shard in block
            ]
        return cls(alphabet, shards=shards, shard_bits=width)

    @classmethod
    def from_payload(cls, alphabet, buffer, backend: Optional[str] = None,
                     shard_bits: Optional[int] = None) -> "ShardedTable":
        """Rebuild a table from its :meth:`payload_bytes` image.

        Unlike the sparse carrier, the bitplane is **copied** out of
        *buffer* into an owned writable array: `ShardedTable` reuses its
        buffers in-place where an operation owns the result (top-word
        masking, shard expansion), so a zero-copy view over a store mmap
        would fault — correctness over the copy cost here.  Geometry
        mismatches raise ``ValueError``; the bytes are trusted — callers
        checksum first.
        """
        alphabet = BitAlphabet.coerce(alphabet)
        view = memoryview(buffer)
        expected = max(1, alphabet.table_bits >> 6) * 8
        if view.nbytes != expected:
            raise ValueError(
                f"sharded payload is {view.nbytes} bytes, a "
                f"{len(alphabet)}-letter bitplane needs {expected}"
            )
        if _use_numpy(backend):
            _runtime.charge_words(expected >> 3, "sharded bitplane load")
            return cls(alphabet, words=_np.frombuffer(view, dtype="<u8").astype(
                _np.uint64, copy=True
            ))
        return cls.from_int(
            alphabet, int.from_bytes(view.tobytes(), "little"),
            backend="int", shard_bits=shard_bits,
        )

    def payload_bytes(self) -> bytes:
        """The bitplane as little-endian 64-bit words, backend-independent
        (the sharded int backend re-joins through :meth:`to_int`, so both
        backends produce the identical image)."""
        if self._words is not None:
            return self._words.astype("<u8", copy=False).tobytes()
        return self.to_int().to_bytes(max(1, self.table_bits >> 6) * 8,
                                      "little")

    # -- views --------------------------------------------------------------

    @property
    def backend(self) -> str:
        return "numpy" if self._words is not None else "int"

    @property
    def table_bits(self) -> int:
        return self.alphabet.table_bits

    def int_shards(self) -> List[int]:
        """The table as a list of shard-width ints (both backends).

        For the numpy backend each :data:`SHARD_BITS`-sized word block is
        packed into one int — the boundary used by :func:`map_shards`.
        """
        if self._shards is not None:
            return list(self._shards)
        words_per_shard = max(1, min(self.table_bits, SHARD_BITS) >> 6)
        data = self._words.astype("<u8", copy=False).tobytes()
        step = words_per_shard * 8
        return [
            int.from_bytes(data[i: i + step], "little")
            for i in range(0, len(data), step)
        ]

    def to_int(self) -> int:
        """Re-join the shards into the Level-2 big-int encoding."""
        if self._words is not None:
            return int.from_bytes(
                self._words.astype("<u8", copy=False).tobytes(), "little"
            )
        value = 0
        width = self._shard_bits
        for index, shard in enumerate(self._shards):
            if shard:
                value |= shard << (index * width)
        return value

    def iter_set_bits(self) -> Iterator[int]:
        """Stream the set table positions (i.e. the model masks), ascending."""
        if self._words is not None:
            words = self._words
            for index in _np.flatnonzero(words):
                base = int(index) << 6
                for bit in iter_set_bits(int(words[index])):
                    yield base + bit
        else:
            width = self._shard_bits
            for index, shard in enumerate(self._shards):
                if shard:
                    base = index * width
                    for bit in iter_set_bits(shard):
                        yield base + bit

    def to_masks(self) -> List[int]:
        return list(self.iter_set_bits())

    # -- scalar queries ------------------------------------------------------

    def any(self) -> bool:
        if self._words is not None:
            return bool(self._words.any())
        return any(self._shards)

    __bool__ = any

    def popcount(self) -> int:
        """Number of set positions (= model count)."""
        if self._words is not None:
            if hasattr(_np, "bitwise_count"):
                return int(_np.bitwise_count(self._words).sum())
            return sum(int(w).bit_count() for w in self._words)  # pragma: no cover
        return sum(shard.bit_count() for shard in self._shards)

    def get_bit(self, mask: int) -> bool:
        if self._words is not None:
            return bool(int(self._words[mask >> 6]) >> (mask & 63) & 1)
        width = self._shard_bits
        return bool(self._shards[mask // width] >> (mask % width) & 1)

    # -- elementwise algebra -------------------------------------------------

    def _like(self, words=None, shards=None) -> "ShardedTable":
        return ShardedTable(
            self.alphabet, words=words, shards=shards, shard_bits=self._shard_bits
        )

    def _check_compatible(self, other: "ShardedTable") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError("sharded tables range over different alphabets")
        if self.backend != other.backend or self._shard_bits != other._shard_bits:
            raise ValueError("sharded tables use different backends")

    def __and__(self, other: "ShardedTable") -> "ShardedTable":
        self._check_compatible(other)
        if self._words is not None:
            return self._like(words=self._words & other._words)
        return self._like(
            shards=[a & b for a, b in zip(self._shards, other._shards)]
        )

    def __or__(self, other: "ShardedTable") -> "ShardedTable":
        self._check_compatible(other)
        if self._words is not None:
            return self._like(words=self._words | other._words)
        return self._like(
            shards=[a | b for a, b in zip(self._shards, other._shards)]
        )

    def __xor__(self, other: "ShardedTable") -> "ShardedTable":
        self._check_compatible(other)
        if self._words is not None:
            return self._like(words=self._words ^ other._words)
        return self._like(
            shards=[a ^ b for a, b in zip(self._shards, other._shards)]
        )

    def __invert__(self) -> "ShardedTable":
        if self._words is not None:
            result = self._like(words=~self._words)
            result._mask_top()
            return result
        shard_full = (1 << self._shard_bits) - 1
        return self._like(shards=[shard ^ shard_full for shard in self._shards])

    def _mask_top(self) -> None:
        """Clear the unused high bits of a sub-word table (n < 6)."""
        if self._words is not None and self.table_bits < WORD_BITS:
            self._words[0] &= _np.uint64((1 << self.table_bits) - 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardedTable):
            return NotImplemented
        if self.alphabet != other.alphabet:
            return False
        if self.backend == other.backend and self._shard_bits == other._shard_bits:
            if self._words is not None:
                return bool((self._words == other._words).all())
            return self._shards == other._shards
        return self.to_int() == other.to_int()

    def __hash__(self) -> int:
        return hash((self.alphabet, self.to_int()))

    def __repr__(self) -> str:
        return (
            f"ShardedTable[{len(self.alphabet)} letters, {self.backend}]"
            f"({self.popcount()} models)"
        )

    # -- structural transforms ----------------------------------------------

    def _swap_bit(self, i: int) -> "ShardedTable":
        """The permutation ``j -> j ^ 2^i`` applied to the table positions."""
        half = 1 << i
        if self._words is not None:
            words = self._words
            if half < WORD_BITS:
                low = _np.uint64(LOW64[i])
                out = ((words >> _np.uint64(half)) & low) | (
                    (words & low) << _np.uint64(half)
                )
            else:
                stride = half >> 6
                out = _np.ascontiguousarray(
                    words.reshape(-1, 2, stride)[:, ::-1, :]
                ).reshape(-1)
            return self._like(words=out)
        width = self._shard_bits
        if half < width:
            low = _shard_low(i, width)
            return self._like(
                shards=[
                    ((shard >> half) & low) | ((shard & low) << half)
                    for shard in self._shards
                ]
            )
        stride = half // width
        shards = self._shards
        return self._like(
            shards=[shards[s ^ stride] for s in range(len(shards))]
        )

    def xor_translate(self, mask: int) -> "ShardedTable":
        """The table of ``{ j ^ mask : j in table }`` (cf.
        :func:`repro.logic.bitmodels.xor_translate_table`).

        The whole-word part of the permutation (mask bits >= 6 for numpy,
        >= the shard width for pure-int shards) collapses into a single
        reindexing pass — ``new[j] = old[j ^ hi]`` — so a translate costs
        one gather plus at most ``log2(word)`` in-word swaps, instead of
        one strided pass per set mask bit.  This is the inner loop of the
        pointwise operators (one translate per model of ``T``).
        """
        if not mask:
            return self
        if self._words is not None:
            words = self._words
            hi = mask >> 6
            if hi:
                words = words[_word_indices(len(words)) ^ hi]
            low = mask & 63
            while low:
                low_bit = low & -low
                i = low_bit.bit_length() - 1
                half = _np.uint64(1 << i)
                pattern = _np.uint64(LOW64[i])
                words = ((words >> half) & pattern) | ((words & pattern) << half)
                low ^= low_bit
            if words is self._words:  # pragma: no cover - mask != 0 above
                words = words.copy()
            return self._like(words=words)
        width = self._shard_bits
        shards = self._shards
        hi = mask // width
        if hi:
            shards = [shards[s ^ hi] for s in range(len(shards))]
        low = mask & (width - 1)
        while low:
            low_bit = low & -low
            i = low_bit.bit_length() - 1
            half = 1 << i
            low_pattern = _shard_low(i, width)
            shards = [
                ((shard >> half) & low_pattern) | ((shard & low_pattern) << half)
                for shard in shards
            ]
            low ^= low_bit
        if shards is self._shards:  # pragma: no cover - mask != 0 above
            shards = list(shards)
        return self._like(shards=shards)

    def _shift_up_or(self, i: int) -> None:
        """In place: ``table |= (table restricted to bit-i-clear) << 2^i``."""
        half = 1 << i
        if self._words is not None:
            words = self._words
            if half < WORD_BITS:
                low = _np.uint64(LOW64[i])
                words |= (words & low) << _np.uint64(half)
            else:
                stride = half >> 6
                view = words.reshape(-1, 2, stride)
                view[:, 1, :] |= view[:, 0, :]
            return
        width = self._shard_bits
        shards = self._shards
        if half < width:
            low = _shard_low(i, width)
            for index, shard in enumerate(shards):
                shards[index] = shard | ((shard & low) << half)
            return
        stride = half // width
        for base in range(0, len(shards), 2 * stride):
            for offset in range(stride):
                shards[base + stride + offset] |= shards[base + offset]

    def _copy(self) -> "ShardedTable":
        if self._words is not None:
            return self._like(words=self._words.copy())
        return self._like(shards=list(self._shards))

    def upward_closure(self) -> "ShardedTable":
        """All supersets of the table's masks (subset-sum sweep per bit)."""
        result = self._copy()
        for i in range(len(self.alphabet)):
            result._shift_up_or(i)
        return result

    def minimal_elements(self) -> "ShardedTable":
        """Inclusion-minimal masks of the table (cf.
        :func:`repro.logic.bitmodels.minimal_elements_table`)."""
        strict = self.zeros_like()
        for i in range(len(self.alphabet)):
            lifted = self._restrict_low(i)
            lifted._shift_up_only(i)
            strict |= lifted
        strict = strict.upward_closure()
        return self & ~strict

    def _restrict_low(self, i: int) -> "ShardedTable":
        """The table restricted to positions whose bit ``i`` is clear."""
        half = 1 << i
        if self._words is not None:
            if half < WORD_BITS:
                return self._like(words=self._words & _np.uint64(LOW64[i]))
            stride = half >> 6
            out = self._words.copy().reshape(-1, 2, stride)
            out[:, 1, :] = 0
            return self._like(words=out.reshape(-1))
        width = self._shard_bits
        if half < width:
            low = _shard_low(i, width)
            return self._like(shards=[shard & low for shard in self._shards])
        stride = half // width
        shards = list(self._shards)
        for base in range(0, len(shards), 2 * stride):
            for offset in range(stride):
                shards[base + stride + offset] = 0
        return self._like(shards=shards)

    def _shift_up_only(self, i: int) -> None:
        """In place: move every (bit-i-clear) position up by ``2^i``,
        clearing the source — assumes bit-i-set positions are empty."""
        half = 1 << i
        if self._words is not None:
            words = self._words
            if half < WORD_BITS:
                low = _np.uint64(LOW64[i])
                shifted = (words & low) << _np.uint64(half)
                words[:] = shifted
            else:
                stride = half >> 6
                view = words.reshape(-1, 2, stride)
                view[:, 1, :] = view[:, 0, :]
                view[:, 0, :] = 0
            return
        width = self._shard_bits
        shards = self._shards
        if half < width:
            low = _shard_low(i, width)
            for index, shard in enumerate(shards):
                shards[index] = (shard & low) << half
            return
        stride = half // width
        for base in range(0, len(shards), 2 * stride):
            for offset in range(stride):
                shards[base + stride + offset] = shards[base + offset]
                shards[base + offset] = 0

    def zeros_like(self) -> "ShardedTable":
        if self._words is not None:
            return self._like(words=_np.zeros_like(self._words))
        return self._like(shards=[0] * len(self._shards))

    def neighbors(self) -> "ShardedTable":
        """All positions at Hamming distance exactly 1 from a set position."""
        result = self.zeros_like()
        for i in range(len(self.alphabet)):
            result |= self._swap_bit(i)
        return result

    def exists_bits(self, bit_indices: Iterable[int]) -> "ShardedTable":
        """Existential smoothing over the given letters: a position stays set
        iff some assignment of those letters reaches a set position."""
        result = self._copy()
        for i in bit_indices:
            result = result | result._swap_bit(i)
        return result

    def ring(self, k: int) -> "ShardedTable":
        """The table restricted to positions with popcount exactly ``k``.

        The popcount of position ``j`` splits as ``popcount(chunk index) +
        popcount(offset)``, so the ring is a per-chunk AND against a
        precomputed offset-ring mask — no per-position loop.
        """
        if self._words is not None:
            nwords = len(self._words)
            word_pc = _word_popcounts(nwords)
            want = k - word_pc.astype(_np.int64)
            valid = (want >= 0) & (want <= 6)
            pattern = _pat64_array()[_np.clip(want, 0, 6)]
            pattern[~valid] = 0
            return self._like(words=self._words & pattern)
        width = self._shard_bits
        rings = _shard_rings(width)
        shards = []
        for index, shard in enumerate(self._shards):
            offset_pc = k - index.bit_count()
            if 0 <= offset_pc < len(rings):
                shards.append(shard & rings[offset_pc])
            else:
                shards.append(0)
        return self._like(shards=shards)

    def first_ring(self) -> Tuple[int, "ShardedTable"]:
        """``(k, ring)`` for the smallest non-empty popcount ring."""
        for k in range(len(self.alphabet) + 1):
            ring = self.ring(k)
            if ring.any():
                return k, ring
        raise ValueError("first_ring of an empty table")

    def min_hamming(self, other: "ShardedTable") -> Tuple[int, "ShardedTable"]:
        """``(k, ball)``: minimum Hamming distance to ``other`` and the
        radius-``k`` ball around ``self`` (cf.
        :func:`repro.logic.bitmodels.min_hamming_distance_tables`)."""
        if not self.any() or not other.any():
            raise ValueError("min Hamming distance of an empty model table")
        ball = self
        distance = 0
        while not (ball & other).any():
            ball = ball | ball.neighbors()
            distance += 1
            if distance > len(self.alphabet):
                raise AssertionError("Hamming ball failed to cover the space")
        return distance, ball


# ---------------------------------------------------------------------------
# numpy compile helpers
# ---------------------------------------------------------------------------

_WORD_PC_CACHE: Dict[int, "object"] = {}
_WORD_INDEX_CACHE: Dict[int, "object"] = {}
_PAT64_ARRAY = None


def _word_indices(nwords: int):
    """``arange(nwords)`` as an index array — cached per bitplane length
    (the XOR-gather of :meth:`ShardedTable.xor_translate` runs per model)."""
    cached = _WORD_INDEX_CACHE.get(nwords)
    if cached is None:
        cached = _np.arange(nwords, dtype=_np.intp)
        _WORD_INDEX_CACHE[nwords] = cached
    return cached


def _word_popcounts(nwords: int):
    """popcount(word index) for each word — cached per bitplane length."""
    cached = _WORD_PC_CACHE.get(nwords)
    if cached is None:
        indices = _np.arange(nwords, dtype=_np.uint64)
        if hasattr(_np, "bitwise_count"):
            cached = _np.bitwise_count(indices).astype(_np.int64)
        else:  # pragma: no cover
            cached = _np.array(
                [int(i).bit_count() for i in range(nwords)], dtype=_np.int64
            )
        _WORD_PC_CACHE[nwords] = cached
    return cached


def _pat64_array():
    global _PAT64_ARRAY
    if _PAT64_ARRAY is None:
        _PAT64_ARRAY = _np.array(PAT64, dtype=_np.uint64)
    return _PAT64_ARRAY


def _numpy_compile(formula: Formula, alphabet: BitAlphabet):
    """Compile a formula to a uint64 bitplane, one vector op per connective.

    Only variable columns are memoised (per call): clause-shaped formulas
    share little else, and releasing intermediate arrays as the walk
    unwinds keeps peak memory proportional to the formula depth.
    """
    nwords = max(1, alphabet.table_bits >> 6)
    columns: Dict[str, object] = {}
    full = _np.uint64(_WORD_FULL)

    def column(name: str):
        cached = columns.get(name)
        if cached is not None:
            return cached
        i = alphabet.bit(name)
        if i < 6:
            col = _np.full(nwords, _np.uint64(_WORD_FULL ^ LOW64[i]))
        else:
            word_bit = (
                _np.arange(nwords, dtype=_np.uint64) >> _np.uint64(i - 6)
            ) & _np.uint64(1)
            col = word_bit * full
        columns[name] = col
        return col

    def walk(node: Formula):
        if isinstance(node, Var):
            return column(node.name)
        if isinstance(node, Not):
            return ~walk(node.operand)
        if isinstance(node, And):
            operands = iter(node.operands)
            acc = walk(next(operands)).copy()
            for operand in operands:
                _np.bitwise_and(acc, walk(operand), out=acc)
                if not acc.any():
                    break
            return acc
        if isinstance(node, Or):
            operands = iter(node.operands)
            acc = walk(next(operands)).copy()
            for operand in operands:
                _np.bitwise_or(acc, walk(operand), out=acc)
            return acc
        if isinstance(node, Implies):
            return ~walk(node.antecedent) | walk(node.consequent)
        if isinstance(node, Iff):
            return ~(walk(node.left) ^ walk(node.right))
        if isinstance(node, Xor):
            return walk(node.left) ^ walk(node.right)
        if isinstance(node, _Constant):
            value = _np.uint64(_WORD_FULL if node.value else 0)
            return _np.full(nwords, value)
        raise TypeError(f"cannot compile {type(node).__name__} to a truth table")

    words = walk(formula)
    if words.base is not None or any(words is col for col in columns.values()):
        words = words.copy()
    table = ShardedTable(alphabet, words=words)
    table._mask_top()
    return table._words


# ---------------------------------------------------------------------------
# Batched pointwise kernels
# ---------------------------------------------------------------------------


def _popcounts_array(values):
    """Per-element popcount of a uint64 array (SWAR below numpy 2.0)."""
    if hasattr(_np, "bitwise_count"):
        return _np.bitwise_count(values)
    x = values.astype(_np.uint64)  # pragma: no cover - legacy numpy only
    x = x - ((x >> _np.uint64(1)) & _np.uint64(0x5555555555555555))
    x = (x & _np.uint64(0x3333333333333333)) + (
        (x >> _np.uint64(2)) & _np.uint64(0x3333333333333333)
    )
    x = (x + (x >> _np.uint64(4))) & _np.uint64(0x0F0F0F0F0F0F0F0F)
    return (x * _np.uint64(0x0101010101010101)) >> _np.uint64(56)


def _mask_array(table: "ShardedTable"):
    """The set table positions as a sorted uint64 array (numpy backend).

    Vectorised counterpart of :meth:`ShardedTable.iter_set_bits`: one pass
    per word bit over the non-zero words only, so a sparse multi-megabyte
    bitplane unpacks in a handful of array operations.
    """
    words = table._words
    hot = _np.flatnonzero(words)
    if not len(hot):
        return _np.zeros(0, dtype=_np.uint64)
    values = words[hot]
    bases = hot.astype(_np.uint64) << _np.uint64(6)
    pieces = []
    for bit in range(WORD_BITS):
        rows = (values >> _np.uint64(bit)) & _np.uint64(1)
        picked = bases[rows.astype(bool)]
        if len(picked):
            pieces.append(picked + _np.uint64(bit))
    out = _np.concatenate(pieces)
    out.sort()
    return out


def table_mask_array(table: "ShardedTable"):
    """A table's set positions in the cheapest bulk form for the batched
    kernels: a sorted ``uint64`` array straight off a numpy bitplane (no
    per-bit Python walk), a list of ints on the pure-int backend."""
    if table._words is not None:
        return _mask_array(table)
    return list(table.iter_set_bits())


def _plane_of_masks(alphabet: BitAlphabet, masks) -> "ShardedTable":
    """A numpy-backed table with exactly the given positions set."""
    table = ShardedTable.zeros(alphabet, backend="numpy")
    if len(masks):
        _np.bitwise_or.at(
            table._words,
            (masks >> _np.uint64(6)).astype(_np.intp),
            _np.uint64(1) << (masks & _np.uint64(63)),
        )
    return table


def _block_translate(source, masks):
    """Row-wise XOR translation on the uint64 bitplane.

    1-D ``source``: a fresh ``(len(masks), nwords)`` block whose row ``b``
    is the bitplane translated by ``masks[b]`` (the whole-word part is one
    2-D gather, sharing :func:`_word_indices`).  2-D ``source``: each row
    translated by its own mask, reusing the buffer where possible — the
    batched kernels own their blocks, and XOR translation is self-inverse,
    so the same call translates a selected block back.
    """
    nwords = source.shape[-1]
    hi = (masks >> _np.uint64(6)).astype(_np.intp)
    if source.ndim == 1:
        block = source[_word_indices(nwords)[None, :] ^ hi[:, None]]
    elif hi.any():
        rows = _np.arange(source.shape[0], dtype=_np.intp)[:, None]
        block = source[rows, _word_indices(nwords)[None, :] ^ hi[:, None]]
    else:
        block = source
    low = masks & _np.uint64(63)
    for i in range(6):
        rows = _np.nonzero(low & _np.uint64(1 << i))[0]
        if len(rows):
            half = _np.uint64(1 << i)
            pattern = _np.uint64(LOW64[i])
            sub = block[rows]
            block[rows] = ((sub >> half) & pattern) | ((sub & pattern) << half)
    return block


def _block_restrict_low(block, i: int):
    """Each row restricted to positions whose bit ``i`` is clear."""
    half = 1 << i
    if half < WORD_BITS:
        return block & _np.uint64(LOW64[i])
    stride = half >> 6
    out = block.copy().reshape(block.shape[0], -1, 2, stride)
    out[:, :, 1, :] = 0
    return out.reshape(block.shape[0], -1)


def _block_shift_up_only(block, i: int) -> None:
    """In place, per row: move bit-i-clear positions up by ``2^i``."""
    half = 1 << i
    if half < WORD_BITS:
        pattern = _np.uint64(LOW64[i])
        block[:] = (block & pattern) << _np.uint64(half)
        return
    stride = half >> 6
    view = block.reshape(block.shape[0], -1, 2, stride)
    view[:, :, 1, :] = view[:, :, 0, :]
    view[:, :, 0, :] = 0


def _block_shift_up_or(block, i: int) -> None:
    """In place, per row: ``row |= (row restricted to bit-i-clear) << 2^i``."""
    half = 1 << i
    if half < WORD_BITS:
        pattern = _np.uint64(LOW64[i])
        block |= (block & pattern) << _np.uint64(half)
        return
    stride = half >> 6
    view = block.reshape(block.shape[0], -1, 2, stride)
    view[:, :, 1, :] |= view[:, :, 0, :]


def _block_minimal(block, letter_count: int):
    """Row-wise inclusion-minimal elements — the
    :meth:`ShardedTable.minimal_elements` sweep run once over the whole
    block (one broadcast numpy call per bit instead of one per model)."""
    strict = _np.zeros_like(block)
    for i in range(letter_count):
        lifted = _block_restrict_low(block, i)
        _block_shift_up_only(lifted, i)
        strict |= lifted
    for i in range(letter_count):
        _block_shift_up_or(strict, i)
    return block & ~strict


def _block_first_ring(block, letter_count: int):
    """Row-wise first non-empty popcount ring.

    Rings peel off level by level: rows whose ring at popcount ``k`` is
    non-empty are finished and drop out of the remaining sweep, so the
    loop runs ``max_row_k`` passes over a shrinking block.
    """
    nwords = block.shape[1]
    word_pc = _word_popcounts(nwords)
    result = _np.zeros_like(block)
    remaining = _np.arange(block.shape[0])
    for k in range(letter_count + 1):
        if not len(remaining):
            break
        want = k - word_pc
        pattern = _np.where(
            (want >= 0) & (want <= 6),
            _pat64_array()[_np.clip(want, 0, 6)],
            _np.uint64(0),
        )
        rings = block[remaining] & pattern[None, :]
        hit = rings.any(axis=1)
        if hit.any():
            result[remaining[hit]] = rings[hit]
            remaining = remaining[~hit]
    return result


def _mask_pointwise_ring(t_masks, p_masks):
    """Sparse Forbus kernel: selected P masks across all T-models.

    For a block of T-models the differences are one XOR outer product;
    a row's first ring is just its popcount minimum, so selection is a
    broadcast compare — no bitplane is ever touched.
    """
    selected = _np.zeros(len(p_masks), dtype=bool)
    rows = max(1, _MASK_PAIR_BUDGET // max(1, len(p_masks)))
    for start in range(0, len(t_masks), rows):
        chunk = t_masks[start:start + rows]
        counts = _popcounts_array(chunk[:, None] ^ p_masks[None, :])
        selected |= (counts == counts.min(axis=1)[:, None]).any(axis=0)
    return p_masks[selected]


def _mask_pointwise_minimal(t_masks, p_masks):
    """Sparse Winslett kernel: selected P masks across all T-models.

    Per T-model the diffs ``p ^ M`` are distinct (XOR is a bijection), so
    the minimal ones come out of a popcount-level antichain sweep: walk
    the levels ascending, kill candidates dominated by an already-accepted
    minimal element (sufficient — any dominator contains a minimal one),
    accept the survivors.  Each level is one vectorised subset test
    against the accepted antichain, which stays small in practice.
    """
    selected = _np.zeros(len(p_masks), dtype=bool)
    for model in t_masks:
        diffs = p_masks ^ model
        counts = _popcounts_array(diffs)
        accepted = None
        for level in _np.unique(counts):
            idx = _np.nonzero(counts == level)[0]
            cand = diffs[idx]
            if accepted is not None:
                dominated = (
                    (accepted[:, None] & ~cand[None, :]) == 0
                ).any(axis=0)
                idx, cand = idx[~dominated], cand[~dominated]
            if len(idx):
                selected[idx] = True
                accepted = (
                    cand if accepted is None
                    else _np.concatenate([accepted, cand])
                )
    return p_masks[selected]


def _pointwise_serial(kind: str, table: "ShardedTable", masks) -> "ShardedTable":
    """The per-model reference path (also the pure-int worker body)."""
    selected = table.zeros_like()
    for model in masks:
        _runtime.checkpoint()
        moved = table.xor_translate(model)
        if kind == "minimal":
            moved = moved.minimal_elements().xor_translate(model)
        elif kind == "ring":
            moved = moved.first_ring()[1].xor_translate(model)
        selected |= moved
    return selected


def _pointwise_numpy(
    kind: str, table: "ShardedTable", t_arr, processes: Optional[int] = None
) -> "ShardedTable":
    """Blocked bitplane kernels, fanned out over a thread pool.

    Each block of T-models becomes one ``(rows, nwords)`` array: translate,
    sweep, translate back, OR-reduce.  The numpy bitwise kernels release
    the GIL, so threads scale on multi-core hosts; partials are OR-combined
    in block order, which makes the result independent of worker count.
    Each block checkpoints and charges its scratch array against the
    active budget before the sweep; the pool
    (:func:`repro.runtime.pool.map_threads`) cancels pending blocks the
    moment one raises, so deadlines bite within one block.
    """
    words = table._words
    letter_count = len(table.alphabet)
    rows = parallel_block(len(words))
    chunks = [t_arr[start:start + rows] for start in range(0, len(t_arr), rows)]

    def select(chunk):
        _runtime.checkpoint()
        _runtime.charge_words(
            len(chunk) * len(words), "pointwise block buffer"
        )
        block = _block_translate(words, chunk)
        if kind == "minimal":
            block = _block_translate(_block_minimal(block, letter_count), chunk)
        elif kind == "ring":
            block = _block_translate(_block_first_ring(block, letter_count), chunk)
        return _np.bitwise_or.reduce(block, axis=0)

    workers = (
        max(1, processes) if processes is not None
        else parallel_workers(letter_count)
    )
    partials = _pool.map_threads(select, chunks, workers)
    combined = partials[0]
    for partial in partials[1:]:
        combined |= partial
    return ShardedTable(table.alphabet, words=combined)


def _pointwise_range_worker(args) -> List[int]:
    """Worker for the T-model-range fan-out (top-level so it pickles)."""
    kind, letters, shard_list, shard_bits, masks = args
    table = ShardedTable(
        BitAlphabet(letters), shards=shard_list, shard_bits=shard_bits
    )
    return _pointwise_serial(kind, table, masks)._shards


def _pointwise_int(
    kind: str, table: "ShardedTable", masks, processes: Optional[int]
) -> "ShardedTable":
    """Pure-int backend: the shard map extended to T-model ranges.

    Each process receives the whole (pickled) shard list plus a slice of
    the T-models, runs the per-model loop on its range, and ships back a
    partial selected table; the parent ORs the partials shard-wise.
    Rides :func:`repro.runtime.pool.map_with_recovery` — a crashed
    worker's range is re-run inline (union commutes, so the masks stay
    bit-identical) — and goes serial while a deadline governs.
    """
    workers = min(
        _pool_size(len(table.alphabet), processes)
        if processes is not None
        else parallel_workers(len(table.alphabet)),
        len(masks),
    )
    if not _runtime.allows_fanout():
        workers = 1
    if workers <= 1:
        return _pointwise_serial(kind, table, masks)
    chunk = (len(masks) + workers - 1) // workers
    jobs = [
        (kind, table.alphabet.letters, table._shards, table._shard_bits,
         masks[start:start + chunk])
        for start in range(0, len(masks), chunk)
    ]
    partials = _pool.map_with_recovery(
        _pointwise_range_worker, jobs, workers=len(jobs),
        label="pointwise T-range fan-out",
    )
    combined = partials[0]
    for shard_list in partials[1:]:
        combined = [a | b for a, b in zip(combined, shard_list)]
    return ShardedTable(
        table.alphabet, shards=combined, shard_bits=table._shard_bits
    )


def pointwise_select(
    kind: str,
    p_table: "ShardedTable",
    t_masks,
    processes: Optional[int] = None,
) -> "ShardedTable":
    """Batched pointwise selection over all T-models at once.

    For every model ``M`` in ``t_masks``: XOR-translate ``p_table`` by
    ``M``, keep the inclusion-minimal elements (``kind="minimal"``,
    Winslett), the first popcount ring (``kind="ring"``, Forbus) or
    everything (``kind="union"``, the translate-union of
    :func:`translate_union`), translate back, and union the selections.
    Equivalent to the per-model loop, bit for bit, for any worker count —
    union is the only cross-model combine and it commutes.

    Dispatch: sparse numpy tables use the mask kernels (the work collapses
    onto the model masks), dense numpy tables the blocked bitplane kernels
    under a thread pool, pure-int tables the per-model loop under the
    multiprocessing T-model-range fan-out.  ``REPRO_POINTWISE_BATCH=0``
    (or clearing :data:`POINTWISE_BATCH`) forces the serial reference
    path.
    """
    if kind not in ("minimal", "ring", "union"):
        raise ValueError(f"unknown pointwise kind {kind!r}")
    if _np is not None and isinstance(t_masks, _np.ndarray):
        masks = t_masks
    else:
        masks = t_masks if isinstance(t_masks, list) else list(t_masks)
    if not len(masks):
        return p_table.zeros_like()
    with _obs.span(
        "kernel.pointwise", kind=kind, tier="sharded",
        letters=len(p_table.alphabet), models=len(masks),
    ):
        return _pointwise_select_impl(kind, p_table, masks, processes)


def _pointwise_select_impl(
    kind: str,
    p_table: "ShardedTable",
    masks,
    processes: Optional[int],
) -> "ShardedTable":
    if kind == "ring" and not p_table.any():
        # Match the per-model loop: first_ring of an empty table raises.
        raise ValueError("first_ring of an empty table")
    if not POINTWISE_BATCH or p_table._words is None:
        if _np is not None and isinstance(masks, _np.ndarray):
            masks = [int(mask) for mask in masks]
        if not POINTWISE_BATCH:
            return _pointwise_serial(kind, p_table, masks)
        return _pointwise_int(kind, p_table, masks, processes)
    t_arr = _np.asarray(masks, dtype=_np.uint64)
    count = p_table.popcount()
    nwords = len(p_table._words)
    letters = len(p_table.alphabet)
    # Crude cost model: the bitplane sweep costs ~(4n+6) word passes per
    # model; route to the mask kernels only when their per-model cost
    # (|P| for rings, up to |P|^2 subset tests for minimality) undercuts
    # it and the mask arrays stay small enough to materialise.
    if kind == "union":
        sparse = 0 < count * len(masks) <= _MASK_PAIR_BUDGET
        if sparse:
            pairs = (_mask_array(p_table)[None, :] ^ t_arr[:, None]).ravel()
            return _plane_of_masks(p_table.alphabet, pairs)
    elif kind == "ring":
        sparse = 0 < count <= min(_RING_MASK_MAX, letters * nwords)
        if sparse:
            return _plane_of_masks(
                p_table.alphabet,
                _mask_pointwise_ring(t_arr, _mask_array(p_table)),
            )
    else:
        sparse = (
            0 < count <= _MIN_MASK_MAX
            and count * count <= 8 * (4 * letters + 6) * nwords
        )
        if sparse:
            return _plane_of_masks(
                p_table.alphabet,
                _mask_pointwise_minimal(t_arr, _mask_array(p_table)),
            )
    return _pointwise_numpy(kind, p_table, t_arr, processes)


def translate_union(
    table: "ShardedTable", masks, processes: Optional[int] = None
) -> "ShardedTable":
    """The union of ``table`` XOR-translated by every mask in ``masks``.

    This is the inner loop of ``delta(T, P)`` (union of difference tables)
    and of Satoh's reachable set; batching it is what keeps the global
    operators tractable at the raised shard cutoff.  Sparse tables take
    the pair-matrix route (one XOR outer product scattered onto a fresh
    bitplane); dense ones the blocked gather under the thread pool.
    """
    return pointwise_select("union", table, masks, processes)
