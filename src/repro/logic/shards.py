"""Level-3 sharded truth tables: numpy bitplanes with a pure-int fallback.

:mod:`repro.logic.bitmodels` stores a model set over ``n`` letters as one
``2^n``-bit Python integer.  That encoding hits a wall around 20 letters:
every AND/XOR re-materialises the whole big-int in one thread, so each
operation is a fresh multi-megabyte allocation executed under the GIL.
This module shards the same ``2^n`` table into fixed-width chunks so the
word-level work runs on hardware-friendly buffers:

* **numpy backend** — the table is a flat ``uint64`` bitplane (one machine
  word per 64 table positions).  Elementwise connectives are single
  vectorised calls, popcounts use ``np.bitwise_count``, and the structural
  transforms (XOR translation, subset-sum closures, Hamming rings) become
  strided slice operations on the word array;
* **pure-int backend** — when numpy is unavailable the table is a list of
  ``2^k``-bit integer shards (:data:`SHARD_BITS` wide).  Every primitive is
  implemented shard-wise, so no single integer ever exceeds the shard
  width, and the shard list is the unit of the multiprocessing map.

Both backends implement the same primitive set as the Level-2 big-int
encoding — formula compilation, ``& | ^ ~``, popcount rings,
:meth:`ShardedTable.xor_translate`, :meth:`ShardedTable.neighbors`,
:meth:`ShardedTable.minimal_elements`, :meth:`ShardedTable.min_hamming` and
existential letter smoothing — which is what lets the revision operators
run one selection rule over either tier (see
:mod:`repro.revision.model_based`).

**Parallel enumeration.**  Truth-table compilation is embarrassingly
parallel across shards: shard ``s`` only needs to know its base offset to
reconstruct every variable column.  :meth:`ShardedTable.from_formula`
therefore fans the shard ranges of large alphabets out over a
``multiprocessing`` pool (``processes=`` forces it; otherwise alphabets
with at least :data:`PARALLEL_MIN_LETTERS` letters and more than one CPU
opt in automatically), and :func:`map_shards` exposes the same shard-map
for ad-hoc per-shard work.

**Tier dispatch.**  :func:`tier` is the single decision point the engine
layers share: ``"table"`` (big-int, up to ``bitmodels._TABLE_MAX_LETTERS``
letters), ``"sharded"`` (this module, up to :data:`SHARD_MAX_LETTERS`,
default 24, env ``REPRO_SHARD_MAX_LETTERS``), ``"masks"`` (SAT enumeration
plus Level-1 mask lists) beyond that.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from . import bitmodels as _bitmodels
from .bitmodels import BitAlphabet, iter_set_bits
from .formula import And, Formula, Iff, Implies, Not, Or, Var, Xor, _Constant

try:  # pragma: no cover - exercised via the CI matrix leg without numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):  # force the pure-int shard fallback
    _np = None

#: Width of one machine word in the numpy bitplane.
WORD_BITS = 64

#: Width (in bits) of one pure-int shard; must be a power of two >= 64.
SHARD_BITS = 1 << int(os.environ.get("REPRO_SHARD_BITS_LOG2", "16"))

#: Largest alphabet the sharded tier handles; beyond it the engine falls
#: back to SAT enumeration plus mask-list selection.
SHARD_MAX_LETTERS = int(os.environ.get("REPRO_SHARD_MAX_LETTERS", "24"))

#: Alphabet size at which pure-int compilation fans out over processes.
PARALLEL_MIN_LETTERS = int(os.environ.get("REPRO_SHARD_PARALLEL_LETTERS", "22"))

#: For each bit index i < 6, the 64-bit mask of word positions whose bit i
#: is CLEAR (the within-word complement column, cf. BitAlphabet._low_masks).
LOW64: Tuple[int, ...] = tuple(
    sum(1 << b for b in range(64) if not b >> i & 1) for i in range(6)
)

#: For each popcount 0..6, the 64-bit mask of word positions with exactly
#: that popcount — the within-word slice of a Hamming ring.
PAT64: Tuple[int, ...] = tuple(
    sum(1 << b for b in range(64) if b.bit_count() == k) for k in range(7)
)

_WORD_FULL = (1 << WORD_BITS) - 1


def tier(letter_count: int) -> str:
    """Which engine tier handles an alphabet of ``letter_count`` letters.

    Reads the cutoffs at call time so tests (and benchmark harnesses) can
    retarget the dispatch by adjusting ``bitmodels._TABLE_MAX_LETTERS`` or
    :data:`SHARD_MAX_LETTERS`.
    """
    if letter_count <= _bitmodels._TABLE_MAX_LETTERS:
        return "table"
    if letter_count <= SHARD_MAX_LETTERS:
        return "sharded"
    return "masks"


def _use_numpy(backend: Optional[str]) -> bool:
    if backend is None:
        return _np is not None
    if backend == "numpy":
        if _np is None:
            raise RuntimeError("numpy backend requested but numpy is unavailable")
        return True
    if backend == "int":
        return False
    raise ValueError(f"unknown shard backend {backend!r} (use 'numpy' or 'int')")


# ---------------------------------------------------------------------------
# Pure-int shard helpers
# ---------------------------------------------------------------------------

#: (bit index, shard bit-width) -> within-shard complement column, built by
#: the same doubling recurrence as BitAlphabet.column.
_SHARD_LOWS: Dict[Tuple[int, int], int] = {}

#: shard bit-width -> per-popcount within-shard ring masks.
_SHARD_RINGS: Dict[int, List[int]] = {}


def _shard_low(i: int, shard_bits: int) -> int:
    """Positions (within one ``shard_bits``-wide shard) whose bit ``i`` is
    clear; requires ``2^i < shard_bits``."""
    cached = _SHARD_LOWS.get((i, shard_bits))
    if cached is not None:
        return cached
    half = 1 << i
    block = (1 << half) - 1  # low half-period set
    width = half << 1
    while width < shard_bits:
        block |= block << width
        width <<= 1
    _SHARD_LOWS[(i, shard_bits)] = block
    return block


def _shard_rings(shard_bits: int) -> List[int]:
    """Within-shard popcount layers: ``rings[k]`` collects the offsets with
    popcount ``k`` (Pascal-triangle doubling, as BitAlphabet.popcount_layers)."""
    cached = _SHARD_RINGS.get(shard_bits)
    if cached is not None:
        return cached
    layers = [1]
    offset_bits = shard_bits.bit_length() - 1
    for i in range(offset_bits):
        shift = 1 << i
        grown = [layers[0]]
        for k in range(1, len(layers)):
            grown.append(layers[k] | (layers[k - 1] << shift))
        grown.append(layers[-1] << shift)
        layers = grown
    _SHARD_RINGS[shard_bits] = layers
    return layers


def _compile_shard_range(args) -> List[int]:
    """Worker for the multiprocessing shard map: compile ``formula`` on the
    shards ``start..stop`` (top-level so it pickles)."""
    formula, letters, start, stop, shard_bits = args
    alphabet = BitAlphabet(letters)
    return [
        _compile_one_shard(formula, alphabet, s, shard_bits)
        for s in range(start, stop)
    ]


def _compile_one_shard(
    formula: Formula, alphabet: BitAlphabet, shard_index: int, shard_bits: int
) -> int:
    """Evaluate ``formula`` on the ``shard_bits`` interpretations whose masks
    lie in ``[shard_index * shard_bits, (shard_index + 1) * shard_bits)``.

    Letters with ``2^i < shard_bits`` contribute the periodic within-shard
    column; higher letters are constant across the shard (their value is a
    bit of the shard's base offset).
    """
    full = (1 << shard_bits) - 1
    base = shard_index * shard_bits
    memo: Dict[int, int] = {}

    def column(name: str) -> int:
        i = alphabet.bit(name)
        if (1 << i) < shard_bits:
            return full ^ _shard_low(i, shard_bits)
        return full if base >> i & 1 else 0

    def walk(node: Formula) -> int:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Var):
            result = column(node.name)
        elif isinstance(node, Not):
            result = walk(node.operand) ^ full
        elif isinstance(node, And):
            result = full
            for operand in node.operands:
                result &= walk(operand)
                if not result:
                    break
        elif isinstance(node, Or):
            result = 0
            for operand in node.operands:
                result |= walk(operand)
                if result == full:
                    break
        elif isinstance(node, Implies):
            result = (walk(node.antecedent) ^ full) | walk(node.consequent)
        elif isinstance(node, Iff):
            result = walk(node.left) ^ walk(node.right) ^ full
        elif isinstance(node, Xor):
            result = walk(node.left) ^ walk(node.right)
        elif isinstance(node, _Constant):
            result = full if node.value else 0
        else:
            raise TypeError(f"cannot compile {type(node).__name__} to a truth table")
        memo[id(node)] = result
        return result

    return walk(formula)


def map_shards(
    function: Callable[[int], object],
    table: "ShardedTable",
    processes: Optional[int] = None,
) -> List[object]:
    """Apply a picklable per-shard function to every shard of ``table``.

    The generic multiprocessing shard map: shards are distributed over a
    process pool when ``processes`` asks for one (or the alphabet crosses
    :data:`PARALLEL_MIN_LETTERS` on a multi-core host); otherwise the map
    runs inline.  ``function`` receives each shard as a plain int.
    """
    shards = table.int_shards()
    workers = _pool_size(len(table.alphabet), processes)
    if workers <= 1 or len(shards) <= 1:
        return [function(shard) for shard in shards]
    from multiprocessing import Pool

    with Pool(workers) as pool:
        return pool.map(function, shards)


def _pool_size(letter_count: int, processes: Optional[int]) -> int:
    if processes is not None:
        return max(1, processes)
    if letter_count < PARALLEL_MIN_LETTERS:
        return 1
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# ShardedTable
# ---------------------------------------------------------------------------


class ShardedTable:
    """A ``2^n``-bit truth table split into fixed-width shards.

    Instances are conceptually immutable: every operation returns a new
    table (internal buffers are reused only where the result owns them).
    Exactly one of the two storage fields is populated:

    * ``_words`` — numpy ``uint64`` bitplane (``2^n / 64`` words);
    * ``_shards`` — list of ``shard_bits``-wide Python ints.
    """

    __slots__ = ("alphabet", "_words", "_shards", "_shard_bits")

    def __init__(self, alphabet, words=None, shards=None, shard_bits=None):
        self.alphabet = BitAlphabet.coerce(alphabet)
        self._words = words
        self._shards = shards
        self._shard_bits = shard_bits

    # -- constructors -------------------------------------------------------

    @classmethod
    def _empty_like(cls, alphabet: BitAlphabet, backend: Optional[str],
                    shard_bits: Optional[int]) -> "ShardedTable":
        alphabet = BitAlphabet.coerce(alphabet)
        if _use_numpy(backend):
            nwords = max(1, alphabet.table_bits >> 6)
            return cls(alphabet, words=_np.zeros(nwords, dtype=_np.uint64))
        width = cls._int_shard_bits(alphabet, shard_bits)
        nshards = max(1, alphabet.table_bits // width)
        return cls(alphabet, shards=[0] * nshards, shard_bits=width)

    @staticmethod
    def _int_shard_bits(alphabet: BitAlphabet, shard_bits: Optional[int]) -> int:
        width = SHARD_BITS if shard_bits is None else shard_bits
        if width < WORD_BITS or width & (width - 1):
            raise ValueError(f"shard width must be a power of two >= {WORD_BITS}")
        return min(alphabet.table_bits, width) if alphabet.table_bits >= WORD_BITS \
            else alphabet.table_bits

    @classmethod
    def zeros(cls, alphabet, backend: Optional[str] = None,
              shard_bits: Optional[int] = None) -> "ShardedTable":
        return cls._empty_like(alphabet, backend, shard_bits)

    @classmethod
    def full(cls, alphabet, backend: Optional[str] = None,
             shard_bits: Optional[int] = None) -> "ShardedTable":
        table = cls._empty_like(alphabet, backend, shard_bits)
        if table._words is not None:
            table._words[:] = _np.uint64(_WORD_FULL)
            table._mask_top()
        else:
            shard_full = (1 << table._shard_bits) - 1
            table._shards = [shard_full] * len(table._shards)
        return table

    @classmethod
    def from_int(cls, alphabet, value: int, backend: Optional[str] = None,
                 shard_bits: Optional[int] = None) -> "ShardedTable":
        """Split a big-int truth table into shards."""
        table = cls._empty_like(alphabet, backend, shard_bits)
        bits = table.alphabet.table_bits
        if value < 0 or value >> bits:
            raise ValueError(f"table value wider than 2^{len(table.alphabet)} bits")
        if table._words is not None:
            nwords = len(table._words)
            data = value.to_bytes(nwords * 8, "little")
            table._words = _np.frombuffer(data, dtype="<u8").astype(
                _np.uint64, copy=True
            )
        else:
            width = table._shard_bits
            mask = (1 << width) - 1
            table._shards = [
                (value >> (s * width)) & mask for s in range(len(table._shards))
            ]
        return table

    @classmethod
    def from_masks(cls, alphabet, masks: Iterable[int],
                   backend: Optional[str] = None,
                   shard_bits: Optional[int] = None) -> "ShardedTable":
        table = cls._empty_like(alphabet, backend, shard_bits)
        if table._words is not None:
            words = table._words
            for mask in masks:
                words[mask >> 6] |= _np.uint64(1 << (mask & 63))
        else:
            width = table._shard_bits
            shards = table._shards
            for mask in masks:
                shards[mask // width] |= 1 << (mask % width)
        return table

    @classmethod
    def from_formula(cls, formula: Formula, alphabet,
                     backend: Optional[str] = None,
                     shard_bits: Optional[int] = None,
                     processes: Optional[int] = None) -> "ShardedTable":
        """Compile ``formula`` to its sharded truth table.

        numpy backend: every connective is one vectorised elementwise call
        over the word array (variable columns are synthesised per call —
        within-word patterns for the low six letters, word-index bit tests
        above them).  Pure-int backend: each shard compiles independently;
        shard ranges fan out over a multiprocessing pool for alphabets at
        or above :data:`PARALLEL_MIN_LETTERS` (or when ``processes`` is
        given explicitly).
        """
        alphabet = BitAlphabet.coerce(alphabet)
        extra = formula.variables() - set(alphabet.letters)
        if extra:
            raise ValueError(
                f"formula letters {sorted(extra)} outside alphabet"
            )
        if _use_numpy(backend):
            return cls(alphabet, words=_numpy_compile(formula, alphabet))
        width = cls._int_shard_bits(alphabet, shard_bits)
        nshards = max(1, alphabet.table_bits // width)
        workers = _pool_size(len(alphabet), processes)
        if workers <= 1 or nshards <= 1:
            shards = [
                _compile_one_shard(formula, alphabet, s, width)
                for s in range(nshards)
            ]
        else:
            from multiprocessing import Pool

            chunk = (nshards + workers - 1) // workers
            jobs = [
                (formula, alphabet.letters, start, min(start + chunk, nshards), width)
                for start in range(0, nshards, chunk)
            ]
            with Pool(len(jobs)) as pool:
                shards = [
                    shard
                    for block in pool.map(_compile_shard_range, jobs)
                    for shard in block
                ]
        return cls(alphabet, shards=shards, shard_bits=width)

    # -- views --------------------------------------------------------------

    @property
    def backend(self) -> str:
        return "numpy" if self._words is not None else "int"

    @property
    def table_bits(self) -> int:
        return self.alphabet.table_bits

    def int_shards(self) -> List[int]:
        """The table as a list of shard-width ints (both backends).

        For the numpy backend each :data:`SHARD_BITS`-sized word block is
        packed into one int — the boundary used by :func:`map_shards`.
        """
        if self._shards is not None:
            return list(self._shards)
        words_per_shard = max(1, min(self.table_bits, SHARD_BITS) >> 6)
        data = self._words.astype("<u8", copy=False).tobytes()
        step = words_per_shard * 8
        return [
            int.from_bytes(data[i: i + step], "little")
            for i in range(0, len(data), step)
        ]

    def to_int(self) -> int:
        """Re-join the shards into the Level-2 big-int encoding."""
        if self._words is not None:
            return int.from_bytes(
                self._words.astype("<u8", copy=False).tobytes(), "little"
            )
        value = 0
        width = self._shard_bits
        for index, shard in enumerate(self._shards):
            if shard:
                value |= shard << (index * width)
        return value

    def iter_set_bits(self) -> Iterator[int]:
        """Stream the set table positions (i.e. the model masks), ascending."""
        if self._words is not None:
            words = self._words
            for index in _np.flatnonzero(words):
                base = int(index) << 6
                for bit in iter_set_bits(int(words[index])):
                    yield base + bit
        else:
            width = self._shard_bits
            for index, shard in enumerate(self._shards):
                if shard:
                    base = index * width
                    for bit in iter_set_bits(shard):
                        yield base + bit

    def to_masks(self) -> List[int]:
        return list(self.iter_set_bits())

    # -- scalar queries ------------------------------------------------------

    def any(self) -> bool:
        if self._words is not None:
            return bool(self._words.any())
        return any(self._shards)

    __bool__ = any

    def popcount(self) -> int:
        """Number of set positions (= model count)."""
        if self._words is not None:
            if hasattr(_np, "bitwise_count"):
                return int(_np.bitwise_count(self._words).sum())
            return sum(int(w).bit_count() for w in self._words)  # pragma: no cover
        return sum(shard.bit_count() for shard in self._shards)

    def get_bit(self, mask: int) -> bool:
        if self._words is not None:
            return bool(int(self._words[mask >> 6]) >> (mask & 63) & 1)
        width = self._shard_bits
        return bool(self._shards[mask // width] >> (mask % width) & 1)

    # -- elementwise algebra -------------------------------------------------

    def _like(self, words=None, shards=None) -> "ShardedTable":
        return ShardedTable(
            self.alphabet, words=words, shards=shards, shard_bits=self._shard_bits
        )

    def _check_compatible(self, other: "ShardedTable") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError("sharded tables range over different alphabets")
        if self.backend != other.backend or self._shard_bits != other._shard_bits:
            raise ValueError("sharded tables use different backends")

    def __and__(self, other: "ShardedTable") -> "ShardedTable":
        self._check_compatible(other)
        if self._words is not None:
            return self._like(words=self._words & other._words)
        return self._like(
            shards=[a & b for a, b in zip(self._shards, other._shards)]
        )

    def __or__(self, other: "ShardedTable") -> "ShardedTable":
        self._check_compatible(other)
        if self._words is not None:
            return self._like(words=self._words | other._words)
        return self._like(
            shards=[a | b for a, b in zip(self._shards, other._shards)]
        )

    def __xor__(self, other: "ShardedTable") -> "ShardedTable":
        self._check_compatible(other)
        if self._words is not None:
            return self._like(words=self._words ^ other._words)
        return self._like(
            shards=[a ^ b for a, b in zip(self._shards, other._shards)]
        )

    def __invert__(self) -> "ShardedTable":
        if self._words is not None:
            result = self._like(words=~self._words)
            result._mask_top()
            return result
        shard_full = (1 << self._shard_bits) - 1
        return self._like(shards=[shard ^ shard_full for shard in self._shards])

    def _mask_top(self) -> None:
        """Clear the unused high bits of a sub-word table (n < 6)."""
        if self._words is not None and self.table_bits < WORD_BITS:
            self._words[0] &= _np.uint64((1 << self.table_bits) - 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardedTable):
            return NotImplemented
        if self.alphabet != other.alphabet:
            return False
        if self.backend == other.backend and self._shard_bits == other._shard_bits:
            if self._words is not None:
                return bool((self._words == other._words).all())
            return self._shards == other._shards
        return self.to_int() == other.to_int()

    def __hash__(self) -> int:
        return hash((self.alphabet, self.to_int()))

    def __repr__(self) -> str:
        return (
            f"ShardedTable[{len(self.alphabet)} letters, {self.backend}]"
            f"({self.popcount()} models)"
        )

    # -- structural transforms ----------------------------------------------

    def _swap_bit(self, i: int) -> "ShardedTable":
        """The permutation ``j -> j ^ 2^i`` applied to the table positions."""
        half = 1 << i
        if self._words is not None:
            words = self._words
            if half < WORD_BITS:
                low = _np.uint64(LOW64[i])
                out = ((words >> _np.uint64(half)) & low) | (
                    (words & low) << _np.uint64(half)
                )
            else:
                stride = half >> 6
                out = _np.ascontiguousarray(
                    words.reshape(-1, 2, stride)[:, ::-1, :]
                ).reshape(-1)
            return self._like(words=out)
        width = self._shard_bits
        if half < width:
            low = _shard_low(i, width)
            return self._like(
                shards=[
                    ((shard >> half) & low) | ((shard & low) << half)
                    for shard in self._shards
                ]
            )
        stride = half // width
        shards = self._shards
        return self._like(
            shards=[shards[s ^ stride] for s in range(len(shards))]
        )

    def xor_translate(self, mask: int) -> "ShardedTable":
        """The table of ``{ j ^ mask : j in table }`` (cf.
        :func:`repro.logic.bitmodels.xor_translate_table`).

        The whole-word part of the permutation (mask bits >= 6 for numpy,
        >= the shard width for pure-int shards) collapses into a single
        reindexing pass — ``new[j] = old[j ^ hi]`` — so a translate costs
        one gather plus at most ``log2(word)`` in-word swaps, instead of
        one strided pass per set mask bit.  This is the inner loop of the
        pointwise operators (one translate per model of ``T``).
        """
        if not mask:
            return self
        if self._words is not None:
            words = self._words
            hi = mask >> 6
            if hi:
                words = words[_word_indices(len(words)) ^ hi]
            low = mask & 63
            while low:
                low_bit = low & -low
                i = low_bit.bit_length() - 1
                half = _np.uint64(1 << i)
                pattern = _np.uint64(LOW64[i])
                words = ((words >> half) & pattern) | ((words & pattern) << half)
                low ^= low_bit
            if words is self._words:  # pragma: no cover - mask != 0 above
                words = words.copy()
            return self._like(words=words)
        width = self._shard_bits
        shards = self._shards
        hi = mask // width
        if hi:
            shards = [shards[s ^ hi] for s in range(len(shards))]
        low = mask & (width - 1)
        while low:
            low_bit = low & -low
            i = low_bit.bit_length() - 1
            half = 1 << i
            low_pattern = _shard_low(i, width)
            shards = [
                ((shard >> half) & low_pattern) | ((shard & low_pattern) << half)
                for shard in shards
            ]
            low ^= low_bit
        if shards is self._shards:  # pragma: no cover - mask != 0 above
            shards = list(shards)
        return self._like(shards=shards)

    def _shift_up_or(self, i: int) -> None:
        """In place: ``table |= (table restricted to bit-i-clear) << 2^i``."""
        half = 1 << i
        if self._words is not None:
            words = self._words
            if half < WORD_BITS:
                low = _np.uint64(LOW64[i])
                words |= (words & low) << _np.uint64(half)
            else:
                stride = half >> 6
                view = words.reshape(-1, 2, stride)
                view[:, 1, :] |= view[:, 0, :]
            return
        width = self._shard_bits
        shards = self._shards
        if half < width:
            low = _shard_low(i, width)
            for index, shard in enumerate(shards):
                shards[index] = shard | ((shard & low) << half)
            return
        stride = half // width
        for base in range(0, len(shards), 2 * stride):
            for offset in range(stride):
                shards[base + stride + offset] |= shards[base + offset]

    def _copy(self) -> "ShardedTable":
        if self._words is not None:
            return self._like(words=self._words.copy())
        return self._like(shards=list(self._shards))

    def upward_closure(self) -> "ShardedTable":
        """All supersets of the table's masks (subset-sum sweep per bit)."""
        result = self._copy()
        for i in range(len(self.alphabet)):
            result._shift_up_or(i)
        return result

    def minimal_elements(self) -> "ShardedTable":
        """Inclusion-minimal masks of the table (cf.
        :func:`repro.logic.bitmodels.minimal_elements_table`)."""
        strict = self.zeros_like()
        for i in range(len(self.alphabet)):
            lifted = self._restrict_low(i)
            lifted._shift_up_only(i)
            strict |= lifted
        strict = strict.upward_closure()
        return self & ~strict

    def _restrict_low(self, i: int) -> "ShardedTable":
        """The table restricted to positions whose bit ``i`` is clear."""
        half = 1 << i
        if self._words is not None:
            if half < WORD_BITS:
                return self._like(words=self._words & _np.uint64(LOW64[i]))
            stride = half >> 6
            out = self._words.copy().reshape(-1, 2, stride)
            out[:, 1, :] = 0
            return self._like(words=out.reshape(-1))
        width = self._shard_bits
        if half < width:
            low = _shard_low(i, width)
            return self._like(shards=[shard & low for shard in self._shards])
        stride = half // width
        shards = list(self._shards)
        for base in range(0, len(shards), 2 * stride):
            for offset in range(stride):
                shards[base + stride + offset] = 0
        return self._like(shards=shards)

    def _shift_up_only(self, i: int) -> None:
        """In place: move every (bit-i-clear) position up by ``2^i``,
        clearing the source — assumes bit-i-set positions are empty."""
        half = 1 << i
        if self._words is not None:
            words = self._words
            if half < WORD_BITS:
                low = _np.uint64(LOW64[i])
                shifted = (words & low) << _np.uint64(half)
                words[:] = shifted
            else:
                stride = half >> 6
                view = words.reshape(-1, 2, stride)
                view[:, 1, :] = view[:, 0, :]
                view[:, 0, :] = 0
            return
        width = self._shard_bits
        shards = self._shards
        if half < width:
            low = _shard_low(i, width)
            for index, shard in enumerate(shards):
                shards[index] = (shard & low) << half
            return
        stride = half // width
        for base in range(0, len(shards), 2 * stride):
            for offset in range(stride):
                shards[base + stride + offset] = shards[base + offset]
                shards[base + offset] = 0

    def zeros_like(self) -> "ShardedTable":
        if self._words is not None:
            return self._like(words=_np.zeros_like(self._words))
        return self._like(shards=[0] * len(self._shards))

    def neighbors(self) -> "ShardedTable":
        """All positions at Hamming distance exactly 1 from a set position."""
        result = self.zeros_like()
        for i in range(len(self.alphabet)):
            result |= self._swap_bit(i)
        return result

    def exists_bits(self, bit_indices: Iterable[int]) -> "ShardedTable":
        """Existential smoothing over the given letters: a position stays set
        iff some assignment of those letters reaches a set position."""
        result = self._copy()
        for i in bit_indices:
            result = result | result._swap_bit(i)
        return result

    def ring(self, k: int) -> "ShardedTable":
        """The table restricted to positions with popcount exactly ``k``.

        The popcount of position ``j`` splits as ``popcount(chunk index) +
        popcount(offset)``, so the ring is a per-chunk AND against a
        precomputed offset-ring mask — no per-position loop.
        """
        if self._words is not None:
            nwords = len(self._words)
            word_pc = _word_popcounts(nwords)
            want = k - word_pc.astype(_np.int64)
            valid = (want >= 0) & (want <= 6)
            pattern = _pat64_array()[_np.clip(want, 0, 6)]
            pattern[~valid] = 0
            return self._like(words=self._words & pattern)
        width = self._shard_bits
        rings = _shard_rings(width)
        shards = []
        for index, shard in enumerate(self._shards):
            offset_pc = k - index.bit_count()
            if 0 <= offset_pc < len(rings):
                shards.append(shard & rings[offset_pc])
            else:
                shards.append(0)
        return self._like(shards=shards)

    def first_ring(self) -> Tuple[int, "ShardedTable"]:
        """``(k, ring)`` for the smallest non-empty popcount ring."""
        for k in range(len(self.alphabet) + 1):
            ring = self.ring(k)
            if ring.any():
                return k, ring
        raise ValueError("first_ring of an empty table")

    def min_hamming(self, other: "ShardedTable") -> Tuple[int, "ShardedTable"]:
        """``(k, ball)``: minimum Hamming distance to ``other`` and the
        radius-``k`` ball around ``self`` (cf.
        :func:`repro.logic.bitmodels.min_hamming_distance_tables`)."""
        if not self.any() or not other.any():
            raise ValueError("min Hamming distance of an empty model table")
        ball = self
        distance = 0
        while not (ball & other).any():
            ball = ball | ball.neighbors()
            distance += 1
            if distance > len(self.alphabet):
                raise AssertionError("Hamming ball failed to cover the space")
        return distance, ball


# ---------------------------------------------------------------------------
# numpy compile helpers
# ---------------------------------------------------------------------------

_WORD_PC_CACHE: Dict[int, "object"] = {}
_WORD_INDEX_CACHE: Dict[int, "object"] = {}
_PAT64_ARRAY = None


def _word_indices(nwords: int):
    """``arange(nwords)`` as an index array — cached per bitplane length
    (the XOR-gather of :meth:`ShardedTable.xor_translate` runs per model)."""
    cached = _WORD_INDEX_CACHE.get(nwords)
    if cached is None:
        cached = _np.arange(nwords, dtype=_np.intp)
        _WORD_INDEX_CACHE[nwords] = cached
    return cached


def _word_popcounts(nwords: int):
    """popcount(word index) for each word — cached per bitplane length."""
    cached = _WORD_PC_CACHE.get(nwords)
    if cached is None:
        indices = _np.arange(nwords, dtype=_np.uint64)
        if hasattr(_np, "bitwise_count"):
            cached = _np.bitwise_count(indices).astype(_np.int64)
        else:  # pragma: no cover
            cached = _np.array(
                [int(i).bit_count() for i in range(nwords)], dtype=_np.int64
            )
        _WORD_PC_CACHE[nwords] = cached
    return cached


def _pat64_array():
    global _PAT64_ARRAY
    if _PAT64_ARRAY is None:
        _PAT64_ARRAY = _np.array(PAT64, dtype=_np.uint64)
    return _PAT64_ARRAY


def _numpy_compile(formula: Formula, alphabet: BitAlphabet):
    """Compile a formula to a uint64 bitplane, one vector op per connective.

    Only variable columns are memoised (per call): clause-shaped formulas
    share little else, and releasing intermediate arrays as the walk
    unwinds keeps peak memory proportional to the formula depth.
    """
    nwords = max(1, alphabet.table_bits >> 6)
    columns: Dict[str, object] = {}
    full = _np.uint64(_WORD_FULL)

    def column(name: str):
        cached = columns.get(name)
        if cached is not None:
            return cached
        i = alphabet.bit(name)
        if i < 6:
            col = _np.full(nwords, _np.uint64(_WORD_FULL ^ LOW64[i]))
        else:
            word_bit = (
                _np.arange(nwords, dtype=_np.uint64) >> _np.uint64(i - 6)
            ) & _np.uint64(1)
            col = word_bit * full
        columns[name] = col
        return col

    def walk(node: Formula):
        if isinstance(node, Var):
            return column(node.name)
        if isinstance(node, Not):
            return ~walk(node.operand)
        if isinstance(node, And):
            operands = iter(node.operands)
            acc = walk(next(operands)).copy()
            for operand in operands:
                _np.bitwise_and(acc, walk(operand), out=acc)
                if not acc.any():
                    break
            return acc
        if isinstance(node, Or):
            operands = iter(node.operands)
            acc = walk(next(operands)).copy()
            for operand in operands:
                _np.bitwise_or(acc, walk(operand), out=acc)
            return acc
        if isinstance(node, Implies):
            return ~walk(node.antecedent) | walk(node.consequent)
        if isinstance(node, Iff):
            return ~(walk(node.left) ^ walk(node.right))
        if isinstance(node, Xor):
            return walk(node.left) ^ walk(node.right)
        if isinstance(node, _Constant):
            value = _np.uint64(_WORD_FULL if node.value else 0)
            return _np.full(nwords, value)
        raise TypeError(f"cannot compile {type(node).__name__} to a truth table")

    words = walk(formula)
    if words.base is not None or any(words is col for col in columns.values()):
        words = words.copy()
    table = ShardedTable(alphabet, words=words)
    table._mask_top()
    return table._words
