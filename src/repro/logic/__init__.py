"""Propositional logic substrate.

Public surface:

* :mod:`repro.logic.formula` — AST, constructors, substitution, size;
* :mod:`repro.logic.parser` — text syntax;
* :mod:`repro.logic.nnf` / :mod:`repro.logic.cnf` — normal forms;
* :mod:`repro.logic.simplify` — local simplification;
* :mod:`repro.logic.theory` — finite sets of formulas (syntax-sensitive);
* :mod:`repro.logic.interpretation` — models as sets of letters;
* :mod:`repro.logic.bitmodels` — the bitmask model-set engine (models as
  ints, model sets as big-int truth tables);
* :mod:`repro.logic.shards` — the sharded truth-table tier (numpy uint64
  bitplanes with a pure-int fallback, for alphabets past the big-int
  cutoff);
* :mod:`repro.logic.sparse` — the sparse model-set tier (sorted mask
  arrays, density-proportional, for bounded-density sets at any alphabet
  size past the shard cutoff).
"""

from .bitmodels import (
    BitAlphabet,
    BitModelSet,
    exists_table,
    iter_set_bits,
    max_subset_masks,
    min_cardinality_masks,
    min_subset_masks,
    truth_table,
)
from .shards import ShardedTable
from .sparse import SparseModelSet, SparseSpill

from .formula import (
    FALSE,
    TRUE,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    Xor,
    as_formula,
    big_and,
    big_or,
    cube,
    fresh_names,
    iff,
    implies,
    land,
    literal,
    lnot,
    lor,
    var,
    variables,
    xor,
)
from .interpretation import (
    Interpretation,
    all_interpretations,
    hamming_distance,
    interp,
    max_subset,
    min_subset,
    restrict,
    symmetric_difference,
)
from .nnf import is_nnf, to_nnf
from .cnf import clauses_formula, to_cnf_distributive, tseitin
from .parser import ParseError, parse
from .printer import to_str
from .simplify import simplify
from .theory import Theory

__all__ = [
    "FALSE",
    "TRUE",
    "And",
    "BitAlphabet",
    "BitModelSet",
    "Bottom",
    "Formula",
    "Iff",
    "Implies",
    "Interpretation",
    "Not",
    "Or",
    "ParseError",
    "ShardedTable",
    "SparseModelSet",
    "SparseSpill",
    "Theory",
    "Top",
    "Var",
    "Xor",
    "all_interpretations",
    "as_formula",
    "big_and",
    "big_or",
    "clauses_formula",
    "cube",
    "fresh_names",
    "hamming_distance",
    "iff",
    "implies",
    "interp",
    "is_nnf",
    "iter_set_bits",
    "land",
    "literal",
    "lnot",
    "lor",
    "max_subset",
    "max_subset_masks",
    "min_cardinality_masks",
    "min_subset",
    "min_subset_masks",
    "parse",
    "restrict",
    "simplify",
    "symmetric_difference",
    "to_cnf_distributive",
    "to_nnf",
    "to_str",
    "truth_table",
    "tseitin",
    "var",
    "variables",
    "xor",
]
