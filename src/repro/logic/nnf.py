"""Negation normal form.

NNF pushes negations to the atoms and rewrites ``->``, ``<->`` and ``^`` in
terms of ``&``, ``|`` and literals.  It is the entry point for both CNF
conversions in :mod:`repro.logic.cnf` and keeps formula blow-up linear except
for ``<->``/``^`` which double their operands (unavoidable without new
letters — exactly the paper's point about query vs logical equivalence).
"""

from __future__ import annotations

from .formula import (
    FALSE,
    TRUE,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    Xor,
    land,
    lnot,
    lor,
)


def to_nnf(formula: Formula) -> Formula:
    """Return an NNF formula logically equivalent to ``formula``.

    The result contains only ``And``, ``Or``, ``Var``, ``Not(Var)`` and the
    constants.
    """
    return _nnf(formula, positive=True)


def is_nnf(formula: Formula) -> bool:
    """Check that a formula is in negation normal form."""
    if isinstance(formula, (Var, Top, Bottom)):
        return True
    if isinstance(formula, Not):
        return isinstance(formula.operand, Var)
    if isinstance(formula, (And, Or)):
        return all(is_nnf(child) for child in formula.children())
    return False


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, Top):
        return TRUE if positive else FALSE
    if isinstance(formula, Bottom):
        return FALSE if positive else TRUE
    if isinstance(formula, Var):
        return formula if positive else Not(formula)
    if isinstance(formula, Not):
        return _nnf(formula.operand, not positive)
    if isinstance(formula, And):
        parts = [_nnf(op, positive) for op in formula.operands]
        return land(*parts) if positive else lor(*parts)
    if isinstance(formula, Or):
        parts = [_nnf(op, positive) for op in formula.operands]
        return lor(*parts) if positive else land(*parts)
    if isinstance(formula, Implies):
        if positive:
            return lor(_nnf(formula.antecedent, False), _nnf(formula.consequent, True))
        return land(_nnf(formula.antecedent, True), _nnf(formula.consequent, False))
    if isinstance(formula, Iff):
        left_pos = _nnf(formula.left, True)
        left_neg = _nnf(formula.left, False)
        right_pos = _nnf(formula.right, True)
        right_neg = _nnf(formula.right, False)
        if positive:
            return lor(land(left_pos, right_pos), land(left_neg, right_neg))
        return lor(land(left_pos, right_neg), land(left_neg, right_pos))
    if isinstance(formula, Xor):
        left_pos = _nnf(formula.left, True)
        left_neg = _nnf(formula.left, False)
        right_pos = _nnf(formula.right, True)
        right_neg = _nnf(formula.right, False)
        if positive:
            return lor(land(left_pos, right_neg), land(left_neg, right_pos))
        return lor(land(left_pos, right_pos), land(left_neg, right_neg))
    raise TypeError(f"unknown formula node {formula!r}")
