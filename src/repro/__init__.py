"""repro — a reproduction of Cadoli, Donini, Liberatore & Schaerf,
"The Size of a Revised Knowledge Base" (PODS 1995 / AIJ 115, 1999).

The library implements, from scratch:

* a propositional-logic core and a DPLL SAT solver (:mod:`repro.logic`,
  :mod:`repro.sat`);
* all nine belief revision / update operators the paper classifies
  (:mod:`repro.revision`): GFUV, Nebel, WIDTIO, Winslett, Borgida, Forbus,
  Satoh, Dalal, Weber;
* every positive compactability construction (:mod:`repro.compact`):
  Theorems 3.4 and 3.5, formulas (5)-(10) and (12)-(16), with the circuit
  machinery of :mod:`repro.circuits`;
* every negative-result reduction family (:mod:`repro.hardness`) and the
  advice-taking machines built on them (:mod:`repro.complexity`);
* a user-facing :class:`~repro.kb.KnowledgeBase` with delayed revisions and
  the offline-compile / online-query split (:mod:`repro.kb`).

Quickstart::

    from repro import KnowledgeBase

    kb = KnowledgeBase("g | b", operator="dalal")   # someone is in
    kb.revise("~g")                                 # George walks out
    assert kb.ask("b")                              # it was Bill
"""

from .compact import (
    CompactRepresentation,
    dalal_compact,
    dalal_iterated,
    is_logically_equivalent_to,
    is_query_equivalent_to,
    minimum_distance,
    omega_exact,
    weber_compact,
    weber_iterated,
)
from .kb import KnowledgeBase
from .logic import Formula, Theory, land, lnot, lor, parse, var
from .revision import (
    OPERATORS,
    RevisionResult,
    get_operator,
    revise,
    revise_iterated,
)

__version__ = "1.0.0"

__all__ = [
    "CompactRepresentation",
    "Formula",
    "KnowledgeBase",
    "OPERATORS",
    "RevisionResult",
    "Theory",
    "dalal_compact",
    "dalal_iterated",
    "get_operator",
    "is_logically_equivalent_to",
    "is_query_equivalent_to",
    "land",
    "lnot",
    "lor",
    "minimum_distance",
    "omega_exact",
    "parse",
    "revise",
    "revise_iterated",
    "var",
    "weber_compact",
    "weber_iterated",
    "__version__",
]
