"""3-SAT machinery following Definition 2.5 of the paper.

The non-compactability proofs partition 3-SAT by instance size: all formulas
of ``3-SAT_n`` are built on the atom set ``B_n = {b_1, ..., b_n}``, and
``pi_max(n)`` is the set of *all* three-literal clauses over ``B_n`` (with
three distinct variables), of which there are ``m_max(n) = 8·C(n,3) = Θ(n³)``.
Every instance ``pi ⊆ pi_max(n)`` is a subset of those clauses; the reduction
families index guard letters ``c_i`` / ``d_i`` by the canonical clause order
defined here.
"""

from __future__ import annotations

import random
from itertools import combinations, product
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..logic.formula import Formula, Var, big_and, big_or, literal

#: A literal over B_n: (atom name, polarity).
Lit = Tuple[str, bool]
#: A three-literal clause in canonical form: tuple sorted by atom index.
Clause3 = Tuple[Lit, Lit, Lit]
#: An instance of 3-SAT_n: a frozenset of canonical clauses.
Instance = FrozenSet[Clause3]


def atom_names(n: int) -> List[str]:
    """``B_n = {b1, ..., bn}``."""
    return [f"b{i}" for i in range(1, n + 1)]


def canonical_clause(lits: Iterable[Lit]) -> Clause3:
    """Canonicalise a clause: sort literals by atom index, check arity."""
    lits = list(lits)
    if len(lits) != 3:
        raise ValueError("three-literal clauses only")
    names = [name for name, _ in lits]
    if len(set(names)) != 3:
        raise ValueError("the three literals must use distinct atoms")
    for name in names:
        if not (name.startswith("b") and name[1:].isdigit()):
            raise ValueError(f"atom {name!r} is not of the form b<i>")
    return tuple(sorted(lits, key=lambda lit: int(lit[0][1:])))  # type: ignore[return-value]


def pi_max(n: int) -> List[Clause3]:
    """All three-literal clauses over ``B_n``, in canonical order.

    Order: variable triples lexicographically by index, then the eight
    polarity patterns in binary-counter order (positive = 0 first).
    """
    if n < 3:
        return []
    names = atom_names(n)
    out: List[Clause3] = []
    for triple in combinations(range(n), 3):
        for signs in product((True, False), repeat=3):
            out.append(
                tuple((names[i], sign) for i, sign in zip(triple, signs))  # type: ignore[arg-type]
            )
    return out


def m_max(n: int) -> int:
    """``m_max(n)`` — number of clauses of ``pi_max(n)`` (= 8·C(n,3))."""
    if n < 3:
        return 0
    return 8 * (n * (n - 1) * (n - 2) // 6)


def clause_index(n: int) -> Dict[Clause3, int]:
    """Canonical index ``gamma_i -> i`` (1-based, as in the paper)."""
    return {clause: i for i, clause in enumerate(pi_max(n), start=1)}


def clause_formula(clause: Clause3) -> Formula:
    """Render one clause as a disjunction of literals."""
    return big_or(literal(name, positive) for name, positive in clause)


def instance_formula(instance: Iterable[Clause3]) -> Formula:
    """Render an instance (set of clauses) as a conjunction."""
    return big_and(clause_formula(clause) for clause in sorted(instance))


def random_instance(n: int, m: int, rng: random.Random) -> Instance:
    """A random instance of 3-SAT_n with ``m`` distinct clauses."""
    pool = pi_max(n)
    if m > len(pool):
        raise ValueError(f"only {len(pool)} distinct clauses exist for n={n}")
    return frozenset(rng.sample(pool, m))


def all_instances(n: int, max_clauses: int | None = None) -> Iterable[Instance]:
    """Every instance of 3-SAT_n (optionally capped in clause count).

    Exponential in ``m_max(n)`` — usable only for n = 3 (``m_max = 8``).
    """
    pool = pi_max(n)
    limit = len(pool) if max_clauses is None else min(max_clauses, len(pool))
    for size in range(limit + 1):
        for chosen in combinations(pool, size):
            yield frozenset(chosen)


def satisfying_assignments(instance: Iterable[Clause3], n: int) -> List[FrozenSet[str]]:
    """All models of the instance over ``B_n``, by brute force."""
    names = atom_names(n)
    clauses = list(instance)
    out: List[FrozenSet[str]] = []
    for mask in range(1 << n):
        model = frozenset(names[i] for i in range(n) if mask >> i & 1)
        if all(
            any((name in model) == positive for name, positive in clause)
            for clause in clauses
        ):
            out.append(model)
    return out


def is_satisfiable_brute(instance: Iterable[Clause3], n: int) -> bool:
    """Brute-force satisfiability over ``B_n`` (n small)."""
    names = atom_names(n)
    clauses = list(instance)
    for mask in range(1 << n):
        model = {names[i] for i in range(n) if mask >> i & 1}
        if all(
            any((name in model) == positive for name, positive in clause)
            for clause in clauses
        ):
            return True
    return False


def is_satisfiable_dpll(instance: Iterable[Clause3]) -> bool:
    """Satisfiability via the library's own SAT solver."""
    from ..sat import is_satisfiable

    return is_satisfiable(instance_formula(instance))
