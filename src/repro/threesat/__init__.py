"""3-SAT instance machinery (Definition 2.5)."""

from .instances import (
    Clause3,
    Instance,
    all_instances,
    atom_names,
    canonical_clause,
    clause_formula,
    clause_index,
    instance_formula,
    is_satisfiable_brute,
    is_satisfiable_dpll,
    m_max,
    pi_max,
    random_instance,
    satisfying_assignments,
)

__all__ = [
    "Clause3",
    "Instance",
    "all_instances",
    "atom_names",
    "canonical_clause",
    "clause_formula",
    "clause_index",
    "instance_formula",
    "is_satisfiable_brute",
    "is_satisfiable_dpll",
    "m_max",
    "pi_max",
    "random_instance",
    "satisfying_assignments",
]
