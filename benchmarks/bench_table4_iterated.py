"""E5 — Table 4: compactability of iterated revision.

Regenerates the YES/NO grid, certifies every YES construction on a sample
sequence, measures representation growth with the number of revisions m
(linear for the Section 5/6 constructions), and measures the minimal-DNF
cost on the Theorem 6.5 family for the logical-equivalence NO cells.
"""

import pytest

from repro.compact import (
    bounded_iterated,
    dalal_iterated,
    is_query_equivalent_to,
    weber_iterated,
    widtio_iterated,
)
from repro.hardness import iterated_family
from repro.logic import Theory, parse
from repro.minimize import TruthTable, minimal_dnf_cost
from repro.revision import get_operator, revise_iterated
from repro.threesat import pi_max

from _util import format_table, write_result

#: The paper's Table 4 (operator -> (general-logical, general-query,
#: bounded-logical, bounded-query)).
PAPER_TABLE4 = {
    "gfuv/nebel": ("NO", "NO", "NO", "NO"),
    "winslett/borgida": ("NO", "NO", "NO", "YES"),
    "forbus": ("NO", "NO", "NO", "YES"),
    "satoh": ("NO", "NO", "NO", "YES"),
    "dalal": ("NO", "YES", "NO", "YES"),
    "weber": ("NO", "YES", "NO", "YES"),
    "widtio": ("YES", "YES", "YES", "YES"),
}

T_TEXT = "a & b & c"
UPDATES = ["~a", "~b", "a | b", "~c"]


def test_table4_grid():
    refs = {
        "gfuv/nebel": ("Th 3.7", "Th 3.1", "Th 4.1", "Th 4.1"),
        "winslett/borgida": ("Th 3.7", "Th 3.2", "Th 6.5", "Cor 6.4"),
        "forbus": ("Th 3.7", "Th 3.3", "Th 6.5", "Cor 6.4"),
        "satoh": ("Th 3.7", "Th 3.2", "Th 6.5", "Cor 6.4"),
        "dalal": ("Th 3.6", "Th 5.1", "Th 6.5", "Th 5.1"),
        "weber": ("Th 3.6", "Cor 5.2", "Th 6.5", "Cor 5.2"),
        "widtio": ("def.", "def.", "def.", "def."),
    }
    lines = ["E5: Table 4 — is the iteratively revised knowledge base compactable?", ""]
    rows = []
    for op, cells in PAPER_TABLE4.items():
        annotated = [f"{cell} ({ref})" for cell, ref in zip(cells, refs[op])]
        rows.append([op] + annotated)
    lines += format_table(
        ["formalism", "general/logical", "general/query", "bounded/logical", "bounded/query"],
        rows,
    )
    write_result("table4_grid.txt", lines)


def test_table4_yes_cells_certified_and_sized():
    t = parse(T_TEXT)
    updates = [parse(u) for u in UPDATES[:2]]
    lines = ["E5: Table 4 YES cells — certification + growth in m", ""]

    rows = []
    rep = dalal_iterated(t, updates)
    ok = is_query_equivalent_to(rep, revise_iterated(t, updates, "dalal"))
    rows.append(["dalal", "Thm 5.1 (Φ_m)", rep.size(), "ok" if ok else "FAIL"])
    assert ok

    rep = weber_iterated(t, updates)
    ok = is_query_equivalent_to(rep, revise_iterated(t, updates, "weber"))
    rows.append(["weber", "formula (10)", rep.size(), "ok" if ok else "FAIL"])
    assert ok

    for name in ("winslett", "borgida", "forbus", "satoh"):
        rep = bounded_iterated(name, t, updates)
        ok = is_query_equivalent_to(rep, revise_iterated(t, updates, name))
        rows.append([name, "formulas (12)-(16)", rep.size(), "ok" if ok else "FAIL"])
        assert ok, name

    theory = Theory.parse_many("a", "b", "c")
    rep = widtio_iterated(theory, updates)
    ground = get_operator("widtio").iterate(theory, updates)
    ok = rep.projected_models() == ground.model_set
    rows.append(["widtio", "revised theory", rep.size(), "ok" if ok else "FAIL"])
    assert ok
    lines += format_table(["operator", "construction", "|T'| (m=2)", "verified"], rows)

    # --- growth in m -----------------------------------------------------------
    # Uniform two-letter updates, so per-step increments are comparable
    # (the block added per step depends on |V(P^i)|, which Theorem 6.1
    # treats as the constant k).
    lines.append("")
    lines.append("Representation size vs number of revisions m (linear shape):")
    all_updates = [parse(u) for u in ("~a | ~b", "a | ~b", "~a | b", "a | b")]
    ms = (1, 2, 3, 4)
    growth_rows = []
    growth_rows.append(
        ["dalal Φ_m"] + [dalal_iterated(t, all_updates[:m]).size() for m in ms]
    )
    growth_rows.append(
        ["weber (10)"] + [weber_iterated(t, all_updates[:m]).size() for m in ms]
    )
    for name in ("winslett", "borgida", "forbus", "satoh"):
        growth_rows.append(
            [f"{name} (12)-(16)"]
            + [bounded_iterated(name, t, all_updates[:m]).size() for m in ms]
        )
    lines += format_table(["construction"] + [f"m={m}" for m in ms], growth_rows)

    # Linear shape: per-step increments are bounded by a constant that
    # depends on k = |V(P^i)| (here 2) but not on m — no multiplicative
    # growth.  (Borgida legitimately alternates between a tiny conjunct on
    # consistent steps and a full Winslett block otherwise.)
    for row in growth_rows:
        sizes = row[1:]
        increments = [sizes[i + 1] - sizes[i] for i in range(len(sizes) - 1)]
        assert max(increments) <= 150, row[0]
        assert sizes[3] <= sizes[0] + 3 * 150, row[0]
    write_result("table4_yes_cells.txt", lines)


def test_table4_no_cells_blowup():
    """Theorem 6.5: no logical compactability — minimal-DNF cost on the
    iterated family, against the (query-equivalent) Φ_m size."""
    lines = [
        "E5: Table 4 NO cells — Theorem 6.5 family",
        "",
        "minimal-DNF cost of T * P¹ * ... * P^n (logical target) vs Φ_m size:",
        "(u = 8 is the full pi_max(3): the first universe with unsatisfiable",
        " clause subsets, where the logical target jumps)",
    ]
    rows = []
    pool = pi_max(3)
    for u in (2, 4, 8):
        family = iterated_family.build(3, tuple(pool[:u]))
        updates = list(family.p_formulas)
        ground = get_operator("dalal").iterate(family.t_formula, updates)
        table = TruthTable.of_models(ground.model_set, ground.alphabet)
        terms, literals = minimal_dnf_cost(table)
        phi = dalal_iterated(family.t_formula, updates)
        rows.append(
            [u, family.t_formula.size() + sum(p.size() for p in updates),
             phi.size(), f"{terms}t/{literals}l"]
        )
    lines += format_table(
        ["|universe|", "input size", "query |Φ_m|", "logical minDNF"], rows
    )
    write_result("table4_no_cells.txt", lines)


def test_bench_dalal_iterated(benchmark):
    t = parse(T_TEXT)
    updates = [parse(u) for u in UPDATES[:3]]
    rep = benchmark.pedantic(
        lambda: dalal_iterated(t, updates), rounds=3, iterations=1
    )
    assert rep.metadata["steps"] == 3


def test_bench_weber_iterated(benchmark):
    t = parse(T_TEXT)
    updates = [parse(u) for u in UPDATES[:3]]
    rep = benchmark.pedantic(
        lambda: weber_iterated(t, updates), rounds=3, iterations=1
    )
    assert rep.metadata["steps"] == 3


@pytest.mark.parametrize("name", ["winslett", "forbus", "satoh"])
def test_bench_bounded_iterated(benchmark, name):
    t = parse(T_TEXT)
    updates = [parse(u) for u in UPDATES[:3]]
    rep = benchmark.pedantic(
        lambda: bounded_iterated(name, t, updates), rounds=3, iterations=1
    )
    assert rep.metadata["steps"] == 3
