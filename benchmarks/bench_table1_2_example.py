"""E1 — regenerate Tables 1 and 2 and the worked example of Section 2.2.2.

Paper artifact: the symmetric-difference table (Table 1), the cardinality
table (Table 2) and the resulting model sets of all six model-based
operators on

    T = a & b & c
    P = (~a & ~b & ~d) | (~c & b & (a ^ d))
"""

import pytest

from repro.logic import interp, parse
from repro.revision import MODEL_BASED_NAMES, revise

from _util import format_table, write_result

T = parse("a & b & c")
P = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")

M_MODELS = [("M1", interp("abcd")), ("M2", interp("abc"))]
N_MODELS = [("N1", interp("ab")), ("N2", interp("c")), ("N3", interp("bd")), ("N4", interp(""))]

PAPER_RESULTS = {
    "winslett": {"N1", "N2", "N3"},
    "borgida": {"N1", "N2", "N3"},
    "forbus": {"N1", "N3"},
    "satoh": {"N1", "N2"},
    "dalal": {"N1"},
    "weber": {"N1", "N2", "N3", "N4"},
}


def _fmt(model) -> str:
    return "{" + ",".join(sorted(model)) + "}"


def _name_of(model) -> str:
    for name, n in N_MODELS:
        if n == model:
            return name
    return _fmt(model)


def _compute_all():
    return {name: revise(T, P, name).model_set for name in MODEL_BASED_NAMES}


def test_regenerate_tables_1_and_2():
    lines = ["E1: Section 2.2.2 worked example", ""]
    lines.append("Table 1 — symmetric differences M △ N")
    rows = []
    for label, m in M_MODELS:
        rows.append([f"{label} = {_fmt(m)}"] + [_fmt(m ^ n) for _, n in N_MODELS])
    lines += format_table(
        ["Δ"] + [f"{nl} = {_fmt(n)}" for nl, n in N_MODELS], rows
    )
    lines.append("")
    lines.append("Table 2 — cardinalities |M △ N|")
    rows = []
    for label, m in M_MODELS:
        rows.append([f"{label} = {_fmt(m)}"] + [len(m ^ n) for _, n in N_MODELS])
    lines += format_table(
        ["|Δ|"] + [f"{nl} = {_fmt(n)}" for nl, n in N_MODELS], rows
    )

    # Paper's stated values, asserted cell by cell.
    assert interp("abcd") ^ interp("c") == frozenset("abd")
    assert [len(interp("abcd") ^ n) for _, n in N_MODELS] == [2, 3, 2, 4]
    assert [len(interp("abc") ^ n) for _, n in N_MODELS] == [1, 2, 3, 3]

    lines.append("")
    lines.append("Operator results (paper vs measured)")
    results = _compute_all()
    rows = []
    for name in MODEL_BASED_NAMES:
        measured = {_name_of(m) for m in results[name]}
        rows.append(
            [name, ",".join(sorted(PAPER_RESULTS[name])), ",".join(sorted(measured)),
             "ok" if measured == PAPER_RESULTS[name] else "MISMATCH"]
        )
        assert measured == PAPER_RESULTS[name], name
    lines += format_table(["operator", "paper", "measured", "verdict"], rows)
    write_result("table1_2_example.txt", lines)


@pytest.mark.parametrize("name", MODEL_BASED_NAMES)
def test_bench_operator_on_example(benchmark, name):
    """Time one full ground-truth revision of the worked example."""
    result = benchmark(lambda: revise(T, P, name))
    assert {_name_of(m) for m in result.model_set} == PAPER_RESULTS[name]
