"""E6 — Nebel's example: |W(T1, P1)| = 2^m.

Measures the possible-world count and the explicit GFUV representation size
on Nebel's family, cross-checking the closed form against the generic
maximal-consistent-subset search at small m.
"""

import pytest

from repro.hardness import nebel_family
from repro.revision import possible_worlds

from _util import format_table, write_result


def test_regenerate_blowup_table():
    lines = ["E6: Nebel's family — exponential possible-world count", ""]
    rows = []
    for m in (1, 2, 3, 4, 6, 8, 10):
        theory, p = nebel_family.build(m)
        input_size = theory.size() + p.size()
        expected = nebel_family.expected_world_count(m)
        if m <= 4:
            measured = len(possible_worlds(theory, p))
            assert measured == expected, m
            measured_str = str(measured)
        else:
            measured_str = "(closed form)"
        explicit = nebel_family.explicit_representation_size(m)
        rows.append([m, input_size, expected, measured_str, explicit])
    lines += format_table(
        ["m", "|T1|+|P1|", "2^m worlds", "search", "explicit |T'|"], rows
    )
    lines.append("")
    lines.append(
        "Input grows linearly with m; the explicit representation grows as"
        " m·2^m — Winslett's 'naive storage organisation' observation."
    )
    write_result("nebel_blowup.txt", lines)


@pytest.mark.parametrize("m", [2, 3, 4])
def test_bench_world_search(benchmark, m):
    theory, p = nebel_family.build(m)
    worlds = benchmark.pedantic(
        lambda: possible_worlds(theory, p), rounds=3, iterations=1
    )
    assert len(worlds) == nebel_family.expected_world_count(m)


def test_bench_explicit_representation(benchmark):
    size = benchmark(lambda: nebel_family.explicit_representation_size(8))
    assert size > 1 << 8
