"""E9 (ablation) — size of the EXA(k, X, Y, W) distance formula.

Theorem 3.4 rests on a polynomial-size circuit for "Hamming distance is
exactly k".  This ablation compares the circuit encoding (counter + fresh
wire letters) with the auxiliary-free subset-enumeration encoding — the very
gap between the bounded and unbounded cases of the paper: without new
letters, exactness costs Θ(C(n, k)).
"""

import pytest

from repro.circuits import exa, exa_plain

from _util import format_table, write_result


def _letters(n):
    return [f"x{i}" for i in range(n)], [f"y{i}" for i in range(n)]


def test_regenerate_size_table():
    lines = ["E9: EXA(k, X, Y, W) size — circuit vs aux-free encoding (k = n/2)", ""]
    rows = []
    for n in (2, 4, 8, 12, 16, 24, 32, 48):
        xs, ys = _letters(n)
        circuit_size = exa(n // 2, xs, ys).size()
        if n <= 12:
            plain_size = exa_plain(n // 2, xs, ys).size()
        else:
            plain_size = "(too large)"
        rows.append([n, circuit_size, plain_size])
    lines += format_table(["n", "circuit |EXA|", "aux-free |EXA|"], rows)
    lines.append("")
    lines.append(
        "The circuit column grows quasi-linearly (counter tree), the aux-free"
        " column as C(n, n/2) — new letters buy exactly the paper's"
        " query-vs-logical equivalence gap."
    )
    write_result("exa_size.txt", lines)

    # Shape assertions: quadrupling n (8 -> 32) grows the circuit by far
    # less than 16x; the plain encoding explodes from n=4 to n=12.
    xs8, ys8 = _letters(8)
    xs32, ys32 = _letters(32)
    assert exa(16, xs32, ys32).size() < 16 * exa(4, xs8, ys8).size()
    xs4, ys4 = _letters(4)
    xs12, ys12 = _letters(12)
    assert exa_plain(6, xs12, ys12).size() > 40 * exa_plain(2, xs4, ys4).size()


@pytest.mark.parametrize("n", [8, 16, 32])
def test_bench_exa_construction(benchmark, n):
    xs, ys = _letters(n)
    formula = benchmark(lambda: exa(n // 2, xs, ys))
    assert formula.size() > 0
