"""E7 — Winslett's chain example: exponential worlds with constant-size P.

``T2`` is the cascade theory; ``P2 = z_m`` has size 1 for every ``m``, yet
``|W(T2, P2)| = 2^(m+1) - 1`` — the observation Theorem 4.1 turns into the
bounded-case non-compactability of GFUV.
"""

import pytest

from repro.hardness import winslett_chain
from repro.revision import possible_worlds

from _util import format_table, write_result


def test_regenerate_chain_table():
    lines = ["E7: Winslett's chain — exponential worlds, constant-size P", ""]
    rows = []
    for m in (1, 2, 3, 4, 6, 8):
        theory, p = winslett_chain.build(m)
        expected = winslett_chain.expected_world_count(m)
        if m <= 4:
            measured = len(possible_worlds(theory, p))
            assert measured == expected, m
            measured_str = str(measured)
        else:
            measured_str = "(closed form)"
        rows.append([m, theory.size(), p.size(), expected, measured_str])
    lines += format_table(
        ["m", "|T2|", "|P2|", "2^(m+1)-1 worlds", "search"], rows
    )
    write_result("winslett_chain.txt", lines)


@pytest.mark.parametrize("m", [2, 3])
def test_bench_chain_world_search(benchmark, m):
    theory, p = winslett_chain.build(m)
    worlds = benchmark.pedantic(
        lambda: possible_worlds(theory, p), rounds=3, iterations=1
    )
    assert len(worlds) == winslett_chain.expected_world_count(m)
