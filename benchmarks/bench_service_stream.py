"""Service-stream benchmark: the resilient front-end under load.

Drives :class:`repro.service.RevisionService` with a zipfian request
stream — a small population of KBs whose popularity follows 1/rank and
whose update chains *drift* (hot KBs accumulate and occasionally reset
their chains, so the worker-side chain memo sees both prefix hits and
fresh work) — and records latency percentiles and throughput twice:

* **faults off** — the plain serving baseline;
* **1% crash rate** — every 100th request is dispatched with a
  ``fault_once="crash"`` directive, so the worker that picks it up dies
  and the front-end must retry it on a restarted/other worker.

Every response in both runs is verified bit-identical against the
engine run inline (``get_operator(...).iterate``), and the two runs are
verified against each other — the crash run must cost latency, never
bits.  The run appends a ``pr10-service`` entry to
``BENCH_revision_perf.json`` (the file is an append-only trajectory
across PRs).

Run ``python benchmarks/bench_service_stream.py`` from the repo root
(``--quick`` for the CI smoke cap).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_revision_perf import load_trajectory

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_revision_perf.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

#: Theories the KB population draws from (cycled by KB index).
THEORIES = (
    "a & b",
    "(a | b) & c",
    "a & (b | c)",
    "(a | b) & (b | c)",
    "a | (b & c)",
    "(a & b) | (a & c)",
)

#: Update formulas the drifting chains draw from.
UPDATES = ("~a", "~b", "~c", "a | b", "b & ~c", "~a & ~c", "c", "a & ~b")


def build_stream(kbs, requests, seed, crash_every=None):
    """The zipfian drifting-chain stream, deterministic in *seed*.

    Returns ``(name, theory, chain, fault_once)`` tuples.  KB k is drawn
    with weight 1/(k+1); each draw extends the KB's chain with
    probability 0.5 (capped at 4 updates) and resets it to one fresh
    update with probability 0.2 — the drift keeps the worker-side chain
    memo honest (prefix hits happen, but so does fresh work).
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(kbs)]
    chains = {k: [UPDATES[k % len(UPDATES)]] for k in range(kbs)}
    stream = []
    for index in range(requests):
        k = rng.choices(range(kbs), weights=weights)[0]
        roll = rng.random()
        if roll < 0.2:
            chains[k] = [rng.choice(UPDATES)]
        elif roll < 0.7 and len(chains[k]) < 4:
            chains[k] = chains[k] + [rng.choice(UPDATES)]
        fault = None
        if crash_every and index % crash_every == crash_every // 2:
            fault = "crash"
        stream.append((
            f"kb-{k:02d}",
            THEORIES[k % len(THEORIES)],
            tuple(chains[k]),
            fault,
        ))
    return stream


def ground_truth(stream):
    """Masks per request, from the engine run inline (memoised per chain)."""
    from repro.logic.formula import as_formula
    from repro.logic.theory import Theory
    from repro.revision.registry import get_operator

    memo = {}
    truth = []
    for _, theory, chain, _ in stream:
        key = (theory, chain)
        if key not in memo:
            result = get_operator("dalal").iterate(
                Theory.coerce((theory,)), [as_formula(u) for u in chain]
            )
            memo[key] = sorted(result.bit_model_set.iter_masks())
        truth.append(memo[key])
    return truth


def run_stream(stream, workers, inflight, label):
    """One pass of *stream* through a fresh service; returns the record."""
    from repro.service import Request, RevisionService, ServiceConfig
    from repro.service.frontend import STATS

    STATS.reset()
    config = ServiceConfig(workers=workers, queue_limit=max(64, inflight * 2))
    latencies = []
    responses = []
    started = time.perf_counter()
    with RevisionService(config) as service:
        pending = []
        for kb, theory, chain, fault in stream:
            pending.append(service.submit(Request(
                kind="revise", kb=kb, theory=theory, updates=chain,
                fault_once=fault,
            )))
            while len(pending) >= inflight:
                responses.append(pending.pop(0).result(300))
        responses.extend(future.result(300) for future in pending)
    wall = time.perf_counter() - started
    for response in responses:
        if response.status != "ok":
            raise AssertionError(
                f"{label}: request failed with {response.status}: "
                f"{response.error}"
            )
        latencies.append(response.latency_s)
    latencies.sort()

    def percentile(q):
        return latencies[min(len(latencies) - 1,
                             int(q * (len(latencies) - 1)))]

    record = {
        "label": label,
        "requests": len(stream),
        "workers": workers,
        "inflight": inflight,
        "wall_s": wall,
        "throughput_rps": len(stream) / wall if wall > 0 else None,
        "p50_s": percentile(0.50),
        "p99_s": percentile(0.99),
        "max_s": latencies[-1],
        "retries": STATS["retries"],
        "worker_deaths": STATS["worker_deaths"],
        "worker_restarts": STATS["worker_restarts"],
        "hedges": STATS["hedges"],
        "shed": STATS["shed"],
        "queue_peak": STATS["queue_peak"],
    }
    print(
        f"  {label:<12} {len(stream)} reqs in {wall:.2f}s "
        f"({record['throughput_rps']:.0f} rps) "
        f"p50={record['p50_s'] * 1000:.1f}ms "
        f"p99={record['p99_s'] * 1000:.1f}ms "
        f"retries={record['retries']} deaths={record['worker_deaths']}",
        flush=True,
    )
    return record, [r.masks for r in responses]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kbs", type=int, default=12,
                        help="KB population size (popularity ~ 1/rank)")
    parser.add_argument("--requests", type=int, default=400,
                        help="stream length per run")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker processes")
    parser.add_argument("--inflight", type=int, default=16,
                        help="submission window (requests in flight)")
    parser.add_argument("--crash-every", type=int, default=100,
                        help="crash-run fault period (100 = 1%% crash rate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--label", default="pr10-service",
                        help="trajectory label for this run")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: short stream")
    parser.add_argument("--json-path", type=Path, default=JSON_PATH)
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = 80
        args.kbs = 6

    stream = build_stream(args.kbs, args.requests, args.seed)
    truth = ground_truth(stream)
    print(
        f"service stream: {args.requests} requests over {args.kbs} KBs "
        f"(zipfian, drifting chains, {len(set((t, c) for _, t, c, _ in stream))} "
        f"distinct chains), {args.workers} workers",
        flush=True,
    )

    clean_record, clean_masks = run_stream(
        stream, args.workers, args.inflight, "faults-off"
    )
    crash_stream = build_stream(
        args.kbs, args.requests, args.seed, crash_every=args.crash_every
    )
    doomed = sum(1 for _, _, _, fault in crash_stream if fault)
    crash_record, crash_masks = run_stream(
        crash_stream, args.workers, args.inflight, "crash-1pct"
    )
    if crash_record["worker_deaths"] < doomed:
        raise AssertionError(
            f"crash run injected {doomed} faults but only "
            f"{crash_record['worker_deaths']} worker deaths were observed"
        )

    # The robustness contract: crashes cost latency, never bits.
    if clean_masks != truth:
        raise AssertionError("faults-off masks diverge from ground truth")
    if crash_masks != truth:
        raise AssertionError("crash-run masks diverge from ground truth")
    print(
        f"  verified: {len(truth)} responses bit-identical to ground truth "
        f"on both runs ({doomed} crashes injected)",
        flush=True,
    )

    payload = {
        "label": args.label,
        "benchmark": "service_stream",
        "description": (
            "Resilient revision service under a zipfian drifting-chain "
            "stream: latency percentiles and throughput, faults off vs a "
            "1% injected worker-crash rate; every response verified "
            "bit-identical to the engine run inline on both runs"
        ),
        "workload": {
            "generator": "benchmarks.bench_service_stream.build_stream",
            "kbs": args.kbs,
            "requests": args.requests,
            "seed": args.seed,
            "popularity": "weight 1/(rank+1)",
            "drift": (
                "per draw: p=0.2 reset chain to one fresh update, p=0.5 "
                "extend (cap 4 updates)"
            ),
            "crash_every": args.crash_every,
            "workers": args.workers,
            "inflight": args.inflight,
        },
        "verified_identical": True,
        "results": [clean_record, crash_record],
    }
    trajectory = load_trajectory(args.json_path)
    trajectory["runs"].append(payload)
    # Crash-safe append — the trajectory accumulates across PRs, so an
    # interrupted run must never truncate it.
    tmp_path = args.json_path.with_name(
        f"{args.json_path.name}.tmp.{os.getpid()}"
    )
    with open(tmp_path, "w") as handle:
        handle.write(json.dumps(trajectory, indent=2) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, args.json_path)
    print(f"\nwrote {args.json_path} ({len(trajectory['runs'])} runs)")
    return payload


if __name__ == "__main__":
    main()
