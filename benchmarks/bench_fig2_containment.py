"""E2 — Fig. 2: containment between the model sets of the six model-based
operators.

The paper's Fig. 2 is a containment diagram; we verify every provable arrow
on a corpus of random (T, P) pairs, and report how often each containment is
*strict* (which shows the arrows are not equalities) plus observed
incomparabilities for the non-arrow pairs.
"""

import pytest

from repro.revision import MODEL_BASED_NAMES, revise

from _util import format_table, random_tp_pair, write_result

ARROWS = [
    ("dalal", "satoh"),
    ("dalal", "forbus"),
    ("dalal", "weber"),
    ("forbus", "winslett"),
    ("satoh", "winslett"),
    ("satoh", "weber"),
    ("borgida", "winslett"),
]

SAMPLES = 120
LETTERS = ["a", "b", "c", "d"]


def _corpus():
    results = []
    for seed in range(SAMPLES):
        t, p = random_tp_pair(seed, LETTERS)
        results.append(
            {name: revise(t, p, name).model_set for name in MODEL_BASED_NAMES}
        )
    return results


def test_regenerate_fig2():
    corpus = _corpus()
    lines = [f"E2: Fig. 2 containment lattice over {SAMPLES} random (T, P) pairs", ""]
    rows = []
    for small, large in ARROWS:
        violations = sum(1 for r in corpus if not r[small] <= r[large])
        strict = sum(1 for r in corpus if r[small] < r[large])
        rows.append([f"{small} ⊆ {large}", violations, strict])
        assert violations == 0, (small, large)
    lines += format_table(["arrow", "violations", "strict cases"], rows)

    # Pairs with no arrow: show observed incomparability (both directions
    # violated at least once across the corpus) or one-sided trends.
    lines.append("")
    lines.append("Non-arrow pairs (observed relationship across corpus):")
    rows = []
    arrow_set = {frozenset(a) for a in ARROWS}
    names = list(MODEL_BASED_NAMES)
    for i, x in enumerate(names):
        for y in names[i + 1:]:
            if frozenset((x, y)) in arrow_set:
                continue
            x_not_in_y = sum(1 for r in corpus if not r[x] <= r[y])
            y_not_in_x = sum(1 for r in corpus if not r[y] <= r[x])
            rows.append([f"{x} vs {y}", x_not_in_y, y_not_in_x])
    lines += format_table(
        ["pair", f"#({0} ⊄ {1})".format("left", "right"), "#(right ⊄ left)"], rows
    )
    write_result("fig2_containment.txt", lines)


def test_bench_containment_round(benchmark):
    """Time one full six-operator comparison on a fixed instance."""
    t, p = random_tp_pair(0, LETTERS)

    def round_trip():
        return {name: revise(t, p, name).model_set for name in MODEL_BASED_NAMES}

    results = benchmark(round_trip)
    for small, large in ARROWS:
        assert results[small] <= results[large]
