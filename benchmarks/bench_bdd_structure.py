"""E12 (extension) — Section 7: generic data structures.

Theorem 7.1 extends the logical-non-compactability results to *any* data
structure with polynomial-time model checking.  ROBDDs are the canonical
such structure (one-path ``ASK``); this bench measures ROBDD node counts of
the exact revision results on the Theorem 3.6 family — Winslett's "clever
storage schemes" conjecture, tested against an actually clever scheme —
and contrasts them with the interleaved-order BDD of the *query-equivalent*
representation.
"""

import pytest

from repro.compact.datastructure import bdd_of_revision
from repro.hardness import dalal_weber_family, nebel_family
from repro.logic import parse
from repro.revision import revise
from repro.threesat import pi_max

from _util import format_table, write_result


def test_regenerate_bdd_size_table():
    lines = [
        "E12: ROBDD sizes of exact revision results (Section 7 data structures)",
        "",
        "Theorem 3.6 family (Dalal):",
    ]
    rows = []
    pool = pi_max(3)
    for u in (2, 4, 6, 8):
        family = dalal_weber_family.build(3, tuple(pool[:u]))
        result = revise(family.t_formula, family.p_formula, "dalal")
        rep = bdd_of_revision(result)
        rows.append(
            [u, family.t_formula.size() + family.p_formula.size(),
             rep.size(), len(result.model_set)]
        )
        # Definition 7.1's ASK agrees with the semantics on C_pi points.
        pi = frozenset(family.universe[: u // 2])
        assert rep.ask(family.c_pi(pi)) == result.satisfies(family.c_pi(pi))
    lines += format_table(
        ["|universe|", "|T|+|P|", "BDD nodes", "models"], rows
    )

    lines.append("")
    lines.append("GFUV on Nebel's family (explicit result as BDD):")
    rows = []
    for m in (1, 2, 3, 4, 5):
        theory, p = nebel_family.build(m)
        result = revise(theory, p, "gfuv")
        # Interleaved order keeps x_i next to y_i — the *best* case.
        order = []
        for i in range(1, m + 1):
            order.extend([f"x{i}", f"y{i}"])
        rep = bdd_of_revision(result, order=order)
        rows.append([m, theory.size() + p.size(), rep.size(), len(result.model_set)])
    lines += format_table(["m", "|T|+|P|", "BDD nodes", "models"], rows)
    lines.append("")
    lines.append(
        "Note: Nebel's T1*P1 is (x_i ≢ y_i) for all i — a formula a BDD"
        " represents in linear size under interleaved order.  The blow-up of"
        " Theorem 3.1 concerns the *query set* of the GFUV revision on the"
        " guarded family, not this particular toy; the BDD columns above are"
        " the honest measurement of what a clever structure can and cannot"
        " compress."
    )
    write_result("bdd_structure.txt", lines)


def test_bench_bdd_compile(benchmark):
    family = dalal_weber_family.build(3, tuple(pi_max(3)[:4]))
    result = revise(family.t_formula, family.p_formula, "dalal")
    rep = benchmark.pedantic(lambda: bdd_of_revision(result), rounds=3, iterations=1)
    assert rep.size() > 2


def test_bench_bdd_ask(benchmark):
    family = dalal_weber_family.build(3, tuple(pi_max(3)[:4]))
    result = revise(family.t_formula, family.p_formula, "dalal")
    rep = bdd_of_revision(result)
    pi = frozenset(family.universe[:2])
    point = family.c_pi(pi)
    answer = benchmark(lambda: rep.ask(point))
    assert answer == result.satisfies(point)
