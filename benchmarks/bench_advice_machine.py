"""E11 — the advice-taking machines of Theorems 2.2/2.3, run end to end.

Offline: compile the polynomial-size query-equivalent advice for Dalal's
operator on the Theorem 3.6 family.  Online: decide 3-SAT instances through
one entailment query each, validated against brute force.  Also measures
the (deliberately unsound) naive model check against the query-equivalent
advice — the observable query-vs-logical gap.
"""

import random

import pytest

from repro.complexity import DalalAdviceMachine, decide_sat_by_gfuv_reduction
from repro.hardness import gfuv_family
from repro.threesat import is_satisfiable_brute, pi_max

from _util import format_table, write_result


def _universe(size, seed=0):
    rng = random.Random(seed)
    return tuple(rng.sample(pi_max(3), size))


def _instances(universe, seed, count):
    rng = random.Random(seed)
    chosen = [frozenset(), frozenset(universe)]
    while len(chosen) < count:
        size = rng.randint(1, len(universe))
        chosen.append(frozenset(rng.sample(list(universe), size)))
    return chosen


def test_regenerate_advice_table():
    lines = ["E11: advice-taking machine on the Theorem 3.6 family (n = 3)", ""]
    rows = []
    for size in (2, 3, 4):
        machine = DalalAdviceMachine(3, _universe(size, seed=size))
        instances = _instances(machine.family.universe, seed=size, count=6)
        correct = sum(
            1
            for pi in instances
            if machine.decide(pi) == is_satisfiable_brute(pi, 3)
        )
        naive_wrong = sum(
            1
            for pi in instances
            if machine.model_check_against_advice(pi)
            != machine.model_check_semantics(pi)
        )
        rows.append(
            [size, machine.advice_size(), f"{correct}/{len(instances)}", naive_wrong]
        )
        assert correct == len(instances)
    lines += format_table(
        ["|universe|", "advice |A(n)|", "decisions correct", "naive model-checks wrong"],
        rows,
    )
    lines.append("")
    lines.append(
        "The advice decides every instance via one entailment query; naive"
        " model checking against the query-equivalent advice is unsound —"
        " the Dalal query-YES/logical-NO cell of Table 3, executed."
    )
    write_result("advice_machine.txt", lines)


def test_gfuv_reduction_correct():
    universe = _universe(3, seed=9)
    family = gfuv_family.build(3, universe)
    for pi in _instances(universe, seed=9, count=5):
        assert decide_sat_by_gfuv_reduction(family, pi) == is_satisfiable_brute(pi, 3)


def test_bench_online_decision(benchmark):
    machine = DalalAdviceMachine(3, _universe(3, seed=1))
    pi = frozenset(machine.family.universe[:2])
    expected = is_satisfiable_brute(pi, 3)
    answer = benchmark(lambda: machine.decide(pi))
    assert answer == expected


def test_bench_offline_compilation(benchmark):
    universe = _universe(2, seed=2)
    machine = benchmark.pedantic(
        lambda: DalalAdviceMachine(3, universe), rounds=3, iterations=1
    )
    assert machine.advice_size() > 0
