"""E-perf — the standing perf trajectory for the six model-based operators.

Times the full revision pipeline (model enumeration + selection) on the
``random_tp_pair`` workload across alphabet sizes and *appends* the run to
``BENCH_revision_perf.json`` (repo root), keeping every earlier run intact:
the file is a trajectory across PRs, not a snapshot.

Engines compared, per instance:

* ``new_s``   — the production dispatch (big-int tables <= 20 letters, the
  sharded tier of :mod:`repro.logic.shards` with batched pointwise kernels
  up to ``shards.SHARD_MAX_LETTERS``, 26 by default);
* ``sharded_s`` — the sharded tier *forced* (table cutoff dropped to 0), so
  18–20-letter instances compare big-int vs sharded head-to-head;
* ``pr2_s``   — the PR 2 sharded engine (batched pointwise kernels
  disabled: one full translate/minimal/translate sweep per T-model), run
  in a killable subprocess with a timeout at sharded sizes;
* ``pr1_s``   — the pre-sharding dispatch (shard tier disabled: big-int
  tables <= 20, SAT enumeration + mask loops above), same subprocess
  treatment — "cannot complete" is a recorded observation, not an
  inference;
* ``old_s``   — the retained frozenset reference engine
  (:func:`repro.revision.reference.reference_revise`), timed up to
  ``--old-max-size`` and used to verify model sets bit-for-bit.

``--batch`` additionally times :func:`repro.revision.revise_many` against
the per-pair ``revise`` loop on a workload of shared theories and revising
formulas.  ``--spot-check-size`` verifies the sharded tier against the SAT
blocking-clause fallback on a sparse instance above the big-int cutoff.

``--sparse-sizes`` runs the bounded-density sparse-tier workload
(:mod:`repro.hardness.sparse_family`: letters × model-density
parameterised cube DNFs) at the given alphabet sizes — the regime where
the sharded tier cannot even compile a table past its letter cutoff.  Per
operator it times the end-to-end pipeline and the selection alone on the
sparse tier, verifies the model set bit-for-bit against the SAT mask
loops (and, at sizes the sharded tier still serves, against the sharded
engine head-to-head), and records which tier answered.  Past the shard
cutoff it also A/Bs the **enumeration phase**: the incremental AllSAT
enumerator of :mod:`repro.sat.allsat` against the PR 4 blocking-clause
loop (``REPRO_ALLSAT=0``) on the same formulas, plus a per-operator
end-to-end cross-check — masks must be bit-identical on every path.

``--store-sizes`` runs the artifact-store leg on the same bounded-density
family: one cold ``BatchCache.warm`` against an empty ``repro.store``
directory (SAT enumeration + artifact publish) vs a simulated process
restart warming off the disk artifact (store hit, no enumeration), masks
verified bit-identical to ground truth on both paths.

Run ``python benchmarks/bench_revision_perf.py`` from the repo root
(``--quick`` for the CI smoke cap).
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import hashlib
import json
import multiprocessing
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _util import format_table, random_tp_pair, write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_revision_perf.json"

OPERATORS = ("winslett", "borgida", "forbus", "satoh", "dalal", "weber")

DEFAULT_SIZES = (6, 8, 10, 12, 14)
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_OLD_MAX_SIZE = 12
DEFAULT_PR1_TIMEOUT = 120.0
DEFAULT_PR2_TIMEOUT = 240.0

#: Alphabet sizes past the big-int cutoff use a bounded-density workload:
#: the pointwise operators loop over models of T, so the model count — not
#: the alphabet — is what must stay controlled while the table width grows.
LARGE_SIZE_MIN = 21


# Workload shape.  WORKLOAD_SPEC goes into the JSON verbatim — keep the
# strings in lockstep with the functions right below them, so later PRs can
# regenerate comparable numbers from the recorded metadata.
WORKLOAD_SPEC = {
    "generator": "random_tp_pair",
    "t_clauses": "max(3, (2 * size) // 3) below 21 letters; 2 * size above",
    "p_clauses": "max(2, size // 3) below 21 letters; size above",
    "model_count_floor": (
        "1 << max(0, size - 4) below 21 letters (PR 1's dense regime); "
        "1 << 10 at 21-22 and 1 << 8 above, with a cap of 4x the floor "
        "(bounded density keeps the per-T-model loops of the pointwise "
        "operators comparable across table widths); candidate seeds "
        "scanned from seed * 1000 until both T and P land in range and, "
        "at 21+ letters, V(T) u V(P) covers every letter (revise() runs "
        "over the union, so sparse draws would shrink the real alphabet)"
    ),
}


def _t_clauses(size: int) -> int:
    return max(3, (2 * size) // 3) if size < LARGE_SIZE_MIN else 2 * size


def _p_clauses(size: int) -> int:
    return max(2, size // 3) if size < LARGE_SIZE_MIN else size


def _model_floor(size: int) -> int:
    if size < LARGE_SIZE_MIN:
        return 1 << max(0, size - 4)
    return 1 << 10 if size <= 22 else 1 << 8


def _model_cap(size: int):
    return None if size < LARGE_SIZE_MIN else 4 * _model_floor(size)


def _letters(size: int):
    return [f"v{i:02d}" for i in range(size)]


def _workload(size: int, seed: int, floor=None, cap=None, t_clauses=None,
              p_clauses=None):
    """A non-trivial (T, P) pair over ``size`` letters.

    Clause counts scale with the alphabet, and candidate seeds (starting at
    ``seed * 1000``) are scanned until both model sets land between the
    floor and the cap: the random draw is bimodal (a 1-clause theory
    saturates ``2^n``, a clause-heavy one leaves a handful of models), and
    the bounds pin the benchmark to the regime the engines under comparison
    actually have to work in — dense below the big-int cutoff, bounded
    density above it.
    """
    from repro.sat import bit_models

    letters = _letters(size)
    floor = _model_floor(size) if floor is None else floor
    cap = _model_cap(size) if cap is None else cap
    candidate = seed * 1000
    while True:
        t, p = random_tp_pair(
            candidate,
            letters,
            t_clauses=_t_clauses(size) if t_clauses is None else t_clauses,
            p_clauses=_p_clauses(size) if p_clauses is None else p_clauses,
        )
        candidate += 1
        if size >= LARGE_SIZE_MIN and len(t.variables() | p.variables()) < size:
            # Sparse random draws can skip letters entirely; revise() runs
            # over V(T) u V(P), so a sharded-size record must actually
            # mention every letter or the effective alphabet shrinks.
            continue
        t_count = bit_models(t, letters).count()
        if floor <= t_count and (cap is None or t_count <= cap):
            p_count = bit_models(p, letters).count()
            if floor <= p_count and (cap is None or p_count <= cap):
                return t, p, t_count, p_count


def _masks_digest(result) -> str:
    """Order-independent digest of a result's model masks (for comparing
    across processes without shipping million-element sets).  Mask width
    follows the alphabet (minimum 8 bytes, for continuity with earlier
    runs), so 65+-letter sparse-tier results digest without overflow."""
    width = max(8, (len(result.alphabet) + 7) // 8)
    digest = hashlib.sha256()
    for mask in sorted(result.bit_model_set.iter_masks()):
        digest.update(mask.to_bytes(width, "little"))
    return digest.hexdigest()


def _forced(table_max=None, shard_max=None):
    """Temporarily retarget the engine dispatch (returns a restore thunk)."""
    from repro.logic import bitmodels, shards

    saved = (bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS)
    if table_max is not None:
        bitmodels._TABLE_MAX_LETTERS = table_max
    if shard_max is not None:
        shards.SHARD_MAX_LETTERS = shard_max

    def restore():
        bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS = saved

    return restore


def _time_revise(t, p, name):
    from repro.revision import revise

    start = time.perf_counter()
    result = revise(t, p, name)
    return time.perf_counter() - start, result


def _engine_worker(t, p, name, mode, conn):
    """Subprocess body: time a retired engine generation.

    ``mode="pr1"`` disables the shard tier (big-int <= 20 letters, SAT +
    mask loops above); ``mode="pr2"`` keeps the sharded tier but disables
    the batched pointwise kernels, i.e. the one-sweep-per-T-model engine
    this PR replaces.
    """
    from repro.logic import shards

    if mode == "pr1":
        _forced(shard_max=0)
    elif mode == "pr2":
        shards.POINTWISE_BATCH = False
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"unknown engine mode {mode!r}")
    try:
        seconds, result = _time_revise(t, p, name)
        conn.send(
            {
                "seconds": seconds,
                "models": result.model_count(),
                "digest": _masks_digest(result),
            }
        )
    except Exception as error:  # pragma: no cover - diagnostic path
        conn.send({"error": repr(error)})
    finally:
        conn.close()


def _run_engine_with_timeout(t, p, name, mode, timeout):
    """A retired engine in a killable subprocess: dict on completion,
    ``None`` on timeout."""
    parent, child = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(
        target=_engine_worker, args=(t, p, name, mode, child)
    )
    process.start()
    child.close()
    payload = None
    if parent.poll(timeout):
        payload = parent.recv()
    process.join(timeout=1.0)
    if process.is_alive():
        process.terminate()
        process.join()
    parent.close()
    return payload


def run_benchmark(sizes, seeds, old_max_size, pr1_timeout, pr2_timeout, operators):
    from repro.logic import Theory
    from repro.revision import reference_revise

    from repro.sat import bit_models

    records = []
    for size in sizes:
        size_seeds = seeds if size < LARGE_SIZE_MIN else seeds[:1]
        for seed in size_seeds:
            t, p, _, _ = _workload(size, seed)
            # Counts recorded over V(T) u V(P) — the alphabet revise()
            # actually runs on — matching the PR 1 trajectory entry; the
            # workload floor above is over the full letter list, whose
            # counts are inflated 2^k by any k unmentioned letters.
            union = sorted(t.variables() | p.variables())
            t_count = bit_models(t, union).count()
            p_count = bit_models(p, union).count()
            for name in operators:
                new_seconds, result = _time_revise(t, p, name)
                result_count = result.model_count()
                record = {
                    "size": size,
                    "seed": seed,
                    "operator": name,
                    "effective_letters": len(union),
                    "t_models": t_count,
                    "p_models": p_count,
                    "result_models": result_count,
                    "new_s": new_seconds,
                    "sharded_s": None,
                    "pr2_s": None,
                    "pr2_speedup": None,
                    "pr1_s": None,
                    "old_s": None,
                    "speedup": None,
                    "models_equal": None,
                }

                # Head-to-head: force the sharded tier onto big-int sizes.
                if size < LARGE_SIZE_MIN:
                    restore = _forced(table_max=0)
                    try:
                        sharded_seconds, sharded_result = _time_revise(t, p, name)
                    finally:
                        restore()
                    record["sharded_s"] = sharded_seconds
                    if (
                        sharded_result.model_count() != result_count
                        or _masks_digest(sharded_result) != _masks_digest(result)
                    ):
                        raise AssertionError(
                            f"sharded/big-int mismatch: size={size} "
                            f"seed={seed} op={name}"
                        )
                else:
                    # Above the big-int cutoff new_s IS the sharded tier;
                    # the retired engine generations get killable
                    # subprocesses instead.
                    record["sharded_s"] = new_seconds
                    for mode, timeout, field in (
                        ("pr2", pr2_timeout, "pr2_s"),
                        ("pr1", pr1_timeout, "pr1_s"),
                    ):
                        outcome = _run_engine_with_timeout(
                            t, p, name, mode, timeout
                        )
                        if outcome is None:
                            record[field] = "timeout"
                        elif "error" in outcome:
                            record[field] = outcome["error"]
                        else:
                            record[field] = outcome["seconds"]
                            if (
                                outcome["models"] != result_count
                                or outcome["digest"] != _masks_digest(result)
                            ):
                                raise AssertionError(
                                    f"sharded/{mode} mismatch: size={size} "
                                    f"seed={seed} op={name}"
                                )
                    if isinstance(record["pr2_s"], float) and new_seconds > 0:
                        record["pr2_speedup"] = record["pr2_s"] / new_seconds

                if size <= old_max_size:
                    start = time.perf_counter()
                    _, reference_set = reference_revise(Theory([t]), p, name)
                    old_seconds = time.perf_counter() - start
                    record["old_s"] = old_seconds
                    record["speedup"] = (
                        old_seconds / new_seconds if new_seconds > 0 else float("inf")
                    )
                    record["models_equal"] = result.model_set == reference_set
                    if not record["models_equal"]:
                        raise AssertionError(
                            f"engine mismatch: size={size} seed={seed} op={name}"
                        )
                records.append(record)
                shown = []
                for field in ("pr2_s", "pr1_s"):
                    value = record[field]
                    if isinstance(value, float):
                        shown.append(f"{field[:3]}={value:.3f}s")
                    elif value:
                        shown.append(f"{field[:3]}={value}")
                if not shown:
                    shown.append(
                        f"{record['speedup']:.1f}x vs frozenset"
                        if record["speedup"]
                        else "old skipped"
                    )
                print(
                    f"  n={size:2d} seed={seed} {name:<9} "
                    f"new={new_seconds:.4f}s ({', '.join(shown)})",
                    flush=True,
                )
    return records


#: Fixed density of the sparse-tier workload: cube counts for T and P are
#: held constant across alphabet sizes, so the records compare the cost of
#: the *alphabet* (26 vs 32 vs 40 letters) at one model density — exactly
#: the axis the sparse tier is supposed to flatten.
DEFAULT_SPARSE_CUBES = (256, 192)


def run_sparse_benchmark(sizes, t_cubes, p_cubes, operators):
    """The sparse-tier workload: bounded density, growing alphabet.

    Per size, one :mod:`repro.hardness.sparse_family` pair (t_cubes /
    p_cubes full cubes — model counts exact and fixed across sizes); per
    operator:

    * ``new_s`` — end-to-end production ``revise`` (SAT enumeration +
      selection; past the shard cutoff this IS the sparse tier);
    * ``select_s`` — the selection alone on the sparse tier, against
      pre-compiled model sets (the warm-serving shape);
    * ``sharded_select_s`` — the same selection on the sharded bitplanes
      where the alphabet still fits the shard cutoff, or the recorded
      reason it cannot compile;
    * ``masks_select_s`` — the same selection on the SAT tier's mask
      loops, whose model set must match the sparse one bit for bit.
    """
    from repro.hardness import sparse_family
    from repro.logic import bitmodels, shards
    from repro.revision import revise
    from repro.revision.registry import get_operator
    from repro.sat import allsat, bit_models

    print(
        f"\nsparse tier: fixed density {t_cubes}x{p_cubes} models, "
        f"sizes {list(sizes)}"
    )
    records = []
    enumeration_records = []
    for size in sizes:
        workload = sparse_family.build(size, t_cubes, p_cubes, seed=0)
        stats_before = dict(allsat.STATS)
        start = time.perf_counter()
        t_bits = bit_models(workload.t_formula, workload.letters)
        p_bits = bit_models(workload.p_formula, workload.letters)
        compile_seconds = time.perf_counter() - start
        if sorted(t_bits.iter_masks()) != list(workload.t_masks):
            raise AssertionError(f"T enumeration mismatch at {size} letters")
        if sorted(p_bits.iter_masks()) != list(workload.p_masks):
            raise AssertionError(f"P enumeration mismatch at {size} letters")
        within_shard = size <= shards.SHARD_MAX_LETTERS
        # Enumeration A/B: past the shard cutoff the compile above IS the
        # incremental AllSAT enumerator — time the PR 4 blocking-clause
        # loop on the same formulas (REPRO_ALLSAT=0, read live) and verify
        # it reproduces the same masks bit for bit.
        if not within_shard:
            if allsat.STATS["enumerations"] <= stats_before["enumerations"]:
                raise AssertionError(
                    f"allsat enumerator not exercised at {size} letters"
                )
            os.environ["REPRO_ALLSAT"] = "0"
            try:
                start = time.perf_counter()
                t_blocking = bit_models(workload.t_formula, workload.letters)
                p_blocking = bit_models(workload.p_formula, workload.letters)
                blocking_seconds = time.perf_counter() - start
            finally:
                del os.environ["REPRO_ALLSAT"]
            if sorted(t_blocking.iter_masks()) != list(workload.t_masks):
                raise AssertionError(
                    f"blocking-loop T mismatch at {size} letters"
                )
            if sorted(p_blocking.iter_masks()) != list(workload.p_masks):
                raise AssertionError(
                    f"blocking-loop P mismatch at {size} letters"
                )
            enumeration_records.append(
                {
                    "size": size,
                    "models": t_bits.count() + p_bits.count(),
                    "allsat_compile_s": compile_seconds,
                    "blocking_compile_s": blocking_seconds,
                    "enum_speedup": (
                        blocking_seconds / compile_seconds
                        if compile_seconds > 0 else None
                    ),
                    "cubes": allsat.STATS["cubes"] - stats_before["cubes"],
                    "resumes": (
                        allsat.STATS["resumes"] - stats_before["resumes"]
                    ),
                }
            )
            shown_speedup = (
                f"{blocking_seconds / compile_seconds:.1f}x"
                if compile_seconds > 0 else "n/a"
            )
            print(
                f"  n={size}: enumeration allsat={compile_seconds:.2f}s "
                f"blocking={blocking_seconds:.2f}s "
                f"({shown_speedup}, identical masks)", flush=True,
            )
        print(
            f"  n={size}: compile {compile_seconds:.2f}s "
            f"({t_bits.count()}x{p_bits.count()} models)", flush=True,
        )
        dense_tier = (
            "table" if size <= bitmodels._TABLE_MAX_LETTERS
            else "sharded" if within_shard
            else None
        )
        for name in operators:
            operator = get_operator(name)

            # Selection on the sparse tier (forced below the dense-tier
            # cutoffs by lowering SPARSE_MIN_LETTERS and, under the
            # big-int cutoff, the table cutoff; the default dispatch
            # above the shard cutoff).
            saved_min = shards.SPARSE_MIN_LETTERS
            restore_dense = _forced(
                table_max=0 if dense_tier == "table" else None
            )
            if dense_tier is not None:
                shards.SPARSE_MIN_LETTERS = size
            try:
                start = time.perf_counter()
                sparse_result = operator.revise_sets(t_bits, p_bits)
                sparse_seconds = time.perf_counter() - start
            finally:
                restore_dense()
                shards.SPARSE_MIN_LETTERS = saved_min
            if sparse_result.engine_tier not in ("sparse", "sparse-spill"):
                raise AssertionError(
                    f"expected the sparse tier, got {sparse_result.engine_tier}"
                )
            digest = _masks_digest(sparse_result)

            # Head-to-head with the dense table tiers, where they exist.
            if dense_tier is not None:
                start = time.perf_counter()
                sharded_result = operator.revise_sets(t_bits, p_bits)
                sharded_seconds = time.perf_counter() - start
                if (
                    sharded_result.engine_tier != dense_tier
                    or _masks_digest(sharded_result) != digest
                ):
                    raise AssertionError(
                        f"sparse/{dense_tier} mismatch: size={size} op={name}"
                    )
            else:
                sharded_seconds = (
                    f"unavailable (shard cutoff {shards.SHARD_MAX_LETTERS})"
                )

            # Parity with the SAT tier's mask loops: disable the sparse
            # tier AND drop the bitplane cutoffs, so the dispatch cannot
            # serve the selection from any table at any size.
            saved_tier = shards.SPARSE_TIER
            shards.SPARSE_TIER = False
            restore = _forced(table_max=0, shard_max=0)
            try:
                start = time.perf_counter()
                masks_result = operator.revise_sets(t_bits, p_bits)
                masks_seconds = time.perf_counter() - start
            finally:
                restore()
                shards.SPARSE_TIER = saved_tier
            if (
                masks_result.engine_tier != "masks"
                or _masks_digest(masks_result) != digest
            ):
                raise AssertionError(
                    f"sparse/masks mismatch: size={size} op={name}"
                )

            # End-to-end production pipeline (enumeration + selection).
            start = time.perf_counter()
            end_result = revise(workload.t_formula, workload.p_formula, name)
            end_seconds = time.perf_counter() - start
            if _masks_digest(end_result) != digest:
                raise AssertionError(
                    f"pipeline mismatch: size={size} op={name}"
                )

            # PR 4 cross-check: the same end-to-end pipeline with the
            # incremental enumerator disabled (blocking-clause loop) must
            # produce bit-identical result masks for every operator.
            if not within_shard:
                os.environ["REPRO_ALLSAT"] = "0"
                try:
                    start = time.perf_counter()
                    pr4_result = revise(
                        workload.t_formula, workload.p_formula, name
                    )
                    pr4_end_seconds = time.perf_counter() - start
                finally:
                    del os.environ["REPRO_ALLSAT"]
                if _masks_digest(pr4_result) != digest:
                    raise AssertionError(
                        f"allsat/blocking pipeline mismatch: size={size} "
                        f"op={name}"
                    )
            else:
                pr4_end_seconds = None

            records.append(
                {
                    "size": size,
                    "operator": name,
                    "t_models": t_bits.count(),
                    "p_models": p_bits.count(),
                    "result_models": sparse_result.model_count(),
                    "tier": sparse_result.engine_tier,
                    "compile_s": compile_seconds,
                    "new_s": end_seconds,
                    "pr4_end_s": pr4_end_seconds,
                    "select_s": sparse_seconds,
                    "sharded_select_s": sharded_seconds,
                    "masks_select_s": masks_seconds,
                    "masks_over_sparse": (
                        masks_seconds / sparse_seconds
                        if sparse_seconds > 0 else None
                    ),
                }
            )
            shown = (
                f"sharded={sharded_seconds:.3f}s"
                if isinstance(sharded_seconds, float)
                else "sharded=n/a"
            )
            pr4_shown = (
                f" pr4-end={pr4_end_seconds:.2f}s"
                if pr4_end_seconds is not None else ""
            )
            print(
                f"  n={size:2d} {name:<9} select={sparse_seconds:.3f}s "
                f"({shown}, masks={masks_seconds:.3f}s) "
                f"end-to-end={end_seconds:.2f}s{pr4_shown} "
                f"[{sparse_result.engine_tier}]",
                flush=True,
            )
    return {
        "workload": {
            "generator": "repro.hardness.sparse_family.build",
            "t_cubes": t_cubes,
            "p_cubes": p_cubes,
            "free_letters": 0,
            "seed": 0,
            "sizes": list(sizes),
            "note": (
                "full cubes: model counts are exactly the cube counts, "
                "fixed across alphabet sizes"
            ),
        },
        # Reaching this line means every parity assertion above passed —
        # any mismatch raises and aborts the run instead of recording False.
        "verified_identical": True,
        #: Enumeration A/B past the shard cutoff: the incremental AllSAT
        #: enumerator vs the PR 4 blocking-clause loop on the same
        #: formulas, masks verified identical (plus per-operator
        #: ``pr4_end_s`` end-to-end cross-checks in ``results``).
        "enumeration": enumeration_records,
        "results": records,
    }


def run_cdcl_benchmark(sizes, model_count, seeds, reps=2):
    """The clause-heavy CDCL workload: learning on vs off, masks verified.

    Per (size, seed), one :mod:`repro.hardness.clause_family` pair — a
    planted-selector CNF whose ground-truth model set is known exactly —
    enumerated to cubes twice: with clause learning (``REPRO_CDCL=1``, the
    default CDCL core) and without (``REPRO_CDCL=0``, the PR 5
    chronological search).  Both runs must reproduce the planted masks bit
    for bit; the first seed of each size additionally re-enumerates under
    ``REPRO_PARALLEL=2`` with the component/prefix fan-out live and checks
    the masks a third time (worker count may change the cube partition,
    never the model set).

    Timings are **CPU seconds** (``time.process_time``, min over ``reps``)
    — the enumeration legs are single-threaded and CPU-bound, and CPU time
    is immune to the co-tenant steal that dominates wall-clock variance on
    shared runners.
    """
    from repro.hardness import clause_family
    from repro.sat import allsat
    from repro.sat.interface import _Encoding

    print(
        f"\ncdcl allsat: clause family, {model_count} planted models, "
        f"sizes {list(sizes)}, seeds {list(seeds)}"
    )
    records = []

    def _enumerate(workload, letters, cdcl, parallel):
        saved_cdcl = os.environ.get("REPRO_CDCL")
        os.environ["REPRO_CDCL"] = cdcl
        try:
            best = None
            masks = None
            for _ in range(reps if not parallel else 1):
                enc = _Encoding()
                enc.add_formula(workload.t_formula)
                projection = sorted(enc.var(name) for name in letters)
                bit_of = {
                    enc.var(name): bit for bit, name in enumerate(letters)
                }
                gc.collect()
                gc.disable()
                start = time.process_time()
                cubes = list(
                    allsat.enumerate_cubes(
                        enc.instance, projection, parallel=parallel
                    )
                )
                elapsed = time.process_time() - start
                gc.enable()
                best = elapsed if best is None else min(best, elapsed)
                masks = tuple(sorted(allsat.cube_masks(cubes, bit_of)))
        finally:
            if saved_cdcl is None:
                del os.environ["REPRO_CDCL"]
            else:
                os.environ["REPRO_CDCL"] = saved_cdcl
        return best, masks

    for size in sizes:
        for index, seed in enumerate(seeds):
            workload = clause_family.build(
                size, model_count, model_count, seed=seed,
                noise_per_letter=9.0, noise_width=(3, 4),
            )
            letters = sorted(workload.letters)
            stats_before = dict(allsat.STATS)
            cdcl_seconds, cdcl_masks = _enumerate(
                workload, letters, "1", False
            )
            conflicts = allsat.STATS["conflicts"] - stats_before["conflicts"]
            learned = allsat.STATS["learned"] - stats_before["learned"]
            chrono_seconds, chrono_masks = _enumerate(
                workload, letters, "0", False
            )
            if cdcl_masks != workload.t_masks:
                raise AssertionError(
                    f"CDCL masks diverge from ground truth at {size} "
                    f"letters (seed {seed})"
                )
            if chrono_masks != workload.t_masks:
                raise AssertionError(
                    f"chronological masks diverge from ground truth at "
                    f"{size} letters (seed {seed})"
                )
            if conflicts <= 0 or learned <= 0:
                raise AssertionError(
                    f"CDCL counters did not fire at {size} letters "
                    f"(seed {seed}): conflicts={conflicts} learned={learned}"
                )
            parallel_identical = None
            if index == 0:
                saved_workers = os.environ.get("REPRO_PARALLEL")
                os.environ["REPRO_PARALLEL"] = "2"
                try:
                    _, parallel_masks = _enumerate(
                        workload, letters, "1", True
                    )
                finally:
                    if saved_workers is None:
                        del os.environ["REPRO_PARALLEL"]
                    else:
                        os.environ["REPRO_PARALLEL"] = saved_workers
                if parallel_masks != workload.t_masks:
                    raise AssertionError(
                        f"parallel masks diverge at {size} letters "
                        f"(seed {seed})"
                    )
                parallel_identical = True
            speedup = (
                chrono_seconds / cdcl_seconds if cdcl_seconds > 0 else None
            )
            records.append(
                {
                    "size": size,
                    "seed": seed,
                    "models": workload.t_model_count,
                    "clauses": workload.clause_counts[0],
                    "cdcl_cpu_s": cdcl_seconds,
                    "chrono_cpu_s": chrono_seconds,
                    "enum_speedup": speedup,
                    "conflicts": conflicts,
                    "learned": learned,
                    "parallel_masks_identical": parallel_identical,
                }
            )
            shown = f"{speedup:.1f}x" if speedup is not None else "n/a"
            print(
                f"  n={size} seed={seed}: cdcl={cdcl_seconds:.2f}s "
                f"chrono={chrono_seconds:.2f}s ({shown}, "
                f"{conflicts} conflicts, {learned} learned, "
                f"identical masks)", flush=True,
            )
    return {
        "workload": {
            "generator": "repro.hardness.clause_family.build",
            "t_models": model_count,
            "p_models": model_count,
            "noise_per_letter": 9.0,
            "noise_width": [3, 4],
            "sizes": list(sizes),
            "seeds": list(seeds),
            "note": (
                "planted-selector CNF, clause order adversarial for "
                "chronological search; ground-truth masks exact at every "
                "size"
            ),
        },
        "timing": f"CPU seconds (time.process_time), min over {reps} reps",
        # Reaching this line means every mask assertion above passed.
        "verified_identical": True,
        "results": records,
    }


def run_governance_benchmark(sizes, model_count, seeds, reps=3):
    """Checkpoint overhead: the PR 6 clause-family CDCL leg, governed.

    Re-runs the serial CDCL enumeration per (size, seed) twice — bare,
    and inside a generous :class:`repro.runtime.Budget` (distant
    deadline plus a large model budget, so every cooperative checkpoint
    performs the full poll: clock read, cancel flag, model-budget
    compare — without ever tripping) — and reports the CPU-time
    overhead of the governed run.  Masks must reproduce the planted
    ground truth in both modes.  Timings are CPU seconds
    (``time.process_time``), min over ``reps``.
    """
    from repro import runtime
    from repro.hardness import clause_family
    from repro.sat import allsat
    from repro.sat.interface import _Encoding

    print(
        f"\ngovernance overhead: clause family, {model_count} planted "
        f"models, sizes {list(sizes)}, seeds {list(seeds)}"
    )

    def _enumerate(workload, letters, governed):
        saved_cdcl = os.environ.get("REPRO_CDCL")
        os.environ["REPRO_CDCL"] = "1"
        try:
            best = None
            masks = None
            for _ in range(reps):
                enc = _Encoding()
                enc.add_formula(workload.t_formula)
                projection = sorted(enc.var(name) for name in letters)
                bit_of = {
                    enc.var(name): bit for bit, name in enumerate(letters)
                }
                budget = (
                    runtime.Budget(deadline=3600.0, max_models=1 << 40)
                    if governed else contextlib.nullcontext()
                )
                gc.collect()
                gc.disable()
                with budget:
                    start = time.process_time()
                    cubes = list(
                        allsat.enumerate_cubes(enc.instance, projection)
                    )
                    elapsed = time.process_time() - start
                gc.enable()
                best = elapsed if best is None else min(best, elapsed)
                masks = tuple(sorted(allsat.cube_masks(cubes, bit_of)))
        finally:
            if saved_cdcl is None:
                del os.environ["REPRO_CDCL"]
            else:
                os.environ["REPRO_CDCL"] = saved_cdcl
        return best, masks

    records = []
    checkpoints_before = runtime.STATS["checkpoints"]
    for size in sizes:
        for seed in seeds:
            workload = clause_family.build(
                size, model_count, model_count, seed=seed,
                noise_per_letter=9.0, noise_width=(3, 4),
            )
            letters = sorted(workload.letters)
            bare_seconds, bare_masks = _enumerate(workload, letters, False)
            governed_seconds, governed_masks = _enumerate(
                workload, letters, True
            )
            if bare_masks != workload.t_masks:
                raise AssertionError(
                    f"bare masks diverge from ground truth at {size} "
                    f"letters (seed {seed})"
                )
            if governed_masks != workload.t_masks:
                raise AssertionError(
                    f"governed masks diverge from ground truth at {size} "
                    f"letters (seed {seed})"
                )
            overhead_pct = (
                (governed_seconds - bare_seconds) / bare_seconds * 100.0
                if bare_seconds > 0 else 0.0
            )
            records.append(
                {
                    "size": size,
                    "seed": seed,
                    "models": workload.t_model_count,
                    "bare_cpu_s": bare_seconds,
                    "governed_cpu_s": governed_seconds,
                    "overhead_pct": overhead_pct,
                }
            )
            print(
                f"  n={size} seed={seed}: bare={bare_seconds:.2f}s "
                f"governed={governed_seconds:.2f}s "
                f"({overhead_pct:+.1f}%, identical masks)", flush=True,
            )
    total_bare = sum(r["bare_cpu_s"] for r in records)
    total_governed = sum(r["governed_cpu_s"] for r in records)
    aggregate_pct = (
        (total_governed - total_bare) / total_bare * 100.0
        if total_bare > 0 else 0.0
    )
    checkpoints = runtime.STATS["checkpoints"] - checkpoints_before
    if checkpoints <= 0:
        raise AssertionError(
            "governed runs polled no checkpoints; governance was inert"
        )
    print(
        f"  aggregate: bare={total_bare:.2f}s governed={total_governed:.2f}s "
        f"({aggregate_pct:+.1f}%, {checkpoints} checkpoints polled)"
    )
    return {
        "workload": {
            "generator": "repro.hardness.clause_family.build",
            "t_models": model_count,
            "p_models": model_count,
            "noise_per_letter": 9.0,
            "noise_width": [3, 4],
            "sizes": list(sizes),
            "seeds": list(seeds),
        },
        "budget": {
            "deadline_s": 3600.0,
            "max_models": 1 << 40,
            "checkpoint_interval": runtime.CHECKPOINT_INTERVAL,
        },
        "timing": f"CPU seconds (time.process_time), min over {reps} reps",
        "checkpoints_polled": checkpoints,
        # Reaching this line means every mask assertion above passed.
        "verified_identical": True,
        "aggregate_overhead_pct": aggregate_pct,
        "results": records,
    }


def run_spot_check(size, operators):
    """Verify the sharded tier against the SAT blocking-clause fallback on
    a sparse instance above the big-int cutoff (model sets must match
    bit-for-bit)."""
    print(f"\nspot check at {size} letters: sharded vs SAT fallback")
    t, p, t_count, p_count = _workload(
        size, seed=0, floor=16, cap=512,
        t_clauses=3 * size, p_clauses=2 * size,
    )
    from repro.logic import shards

    outcomes = {}
    for name in operators:
        _, sharded_result = _time_revise(t, p, name)
        # Disable the sparse tier too: with density-aware dispatch a
        # bounded workload under shard_max=0 would otherwise land on the
        # sparse carrier and this leg would stop exercising the mask loops
        # it exists to verify.
        restore = _forced(shard_max=0)
        saved_sparse = shards.SPARSE_TIER
        shards.SPARSE_TIER = False
        try:
            _, fallback_result = _time_revise(t, p, name)
        finally:
            shards.SPARSE_TIER = saved_sparse
            restore()
        if fallback_result.engine_tier not in ("masks", "degenerate"):
            raise AssertionError(
                f"expected the SAT mask tier, got {fallback_result.engine_tier}"
            )
        matches = (
            sharded_result.model_count() == fallback_result.model_count()
            and _masks_digest(sharded_result) == _masks_digest(fallback_result)
        )
        if not matches:
            raise AssertionError(f"sharded/SAT-fallback mismatch: op={name}")
        outcomes[name] = sharded_result.model_count()
        print(f"  {name:<9} identical ({outcomes[name]} models)")
    return {
        "size": size,
        "t_models": t_count,
        "p_models": p_count,
        "result_models": outcomes,
        "verified_identical": True,
    }


def run_batch_benchmark(sizes, operators):
    """Batched workload: a request stream over shared theories x updates.

    4 theories x 4 revising formulas cross into 16 distinct pairs; the
    stream repeats each pair 4 times round-robin (64 requests) — the
    serving shape: a small population of KBs, a small population of
    updates, hot keys recurring.  Times the per-request ``revise`` loop
    against one ``revise_many`` call on the same stream and verifies the
    results coincide request-for-request.
    """
    from repro.revision import revise, revise_many

    print("\nbatched workload: revise_many vs per-pair revise")
    batch_records = []
    for size in sizes:
        theories = []
        formulas = []
        for seed in range(4):
            t, p, _, _ = _workload(size, seed)
            theories.append(t)
            formulas.append(p)
        distinct = [(t, p) for t in theories for p in formulas]
        pairs = distinct * 4
        for name in operators:
            start = time.perf_counter()
            singles = [revise(t, p, name) for t, p in pairs]
            loop_seconds = time.perf_counter() - start
            start = time.perf_counter()
            batched = revise_many(pairs, name)
            batch_seconds = time.perf_counter() - start
            for single, result in zip(singles, batched):
                if (
                    single.alphabet != result.alphabet
                    or single.bit_model_set != result.bit_model_set
                ):
                    raise AssertionError(
                        f"batch mismatch: size={size} op={name}"
                    )
            speedup = loop_seconds / batch_seconds if batch_seconds > 0 else None
            batch_records.append(
                {
                    "size": size,
                    "operator": name,
                    "pairs": len(pairs),
                    "loop_s": loop_seconds,
                    "batch_s": batch_seconds,
                    "batch_speedup": speedup,
                }
            )
            print(
                f"  n={size:2d} {name:<9} pairs={len(pairs)} "
                f"loop={loop_seconds:.4f}s batch={batch_seconds:.4f}s "
                f"({speedup:.2f}x)"
            )
    return batch_records


def run_store_benchmark(sizes, t_cubes, p_cubes):
    """Artifact-store leg: cold compile vs warm restart against disk.

    Per size (past the shard cutoff, where compilation means SAT
    enumeration): warm a ``BatchCache`` against an empty store (cold —
    pays enumeration + the artifact publish), then simulate a process
    restart (fresh cache, fresh store handle via
    ``repro.store.reset_active``) and warm again — the carrier must come
    off disk (``store-hit`` fires, no enumeration) with masks
    bit-identical to the exact ground truth of the generator.
    """
    import shutil
    import tempfile

    from repro import runtime as repro_runtime
    from repro import store as repro_store
    from repro.hardness.sparse_family import build as build_sparse
    from repro.revision.batch import BatchCache

    print("\nartifact store: cold compile vs warm restart")
    records = []
    saved_env = os.environ.get("REPRO_STORE")
    root = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        os.environ["REPRO_STORE"] = root
        repro_store.reset_active()
        for size in sizes:
            workload = build_sparse(size, t_cubes, p_cubes, seed=7)
            truth = sorted(workload.t_masks)
            store_dir = os.path.join(root, str(size))
            os.makedirs(store_dir)
            os.environ["REPRO_STORE"] = store_dir
            repro_runtime.STATS.reset()

            repro_store.reset_active()
            cold_cache = BatchCache()
            start = time.perf_counter()
            cold_bits = cold_cache.warm(workload.t_formula)
            cold_seconds = time.perf_counter() - start
            if sorted(cold_bits.iter_masks()) != truth:
                raise AssertionError(f"cold masks wrong at size={size}")
            if cold_cache.tier_counts["store-put"] < 1:
                raise AssertionError(f"no artifact published at size={size}")

            # The restart: nothing survives but the directory.
            repro_store.reset_active()
            warm_cache = BatchCache()
            start = time.perf_counter()
            warm_bits = warm_cache.warm(workload.t_formula)
            warm_seconds = time.perf_counter() - start
            if sorted(warm_bits.iter_masks()) != truth:
                raise AssertionError(f"disk-warm masks wrong at size={size}")
            if warm_cache.tier_counts["store-hit"] < 1:
                raise AssertionError(f"store never hit at size={size}")

            speedup = cold_seconds / warm_seconds if warm_seconds > 0 else None
            records.append({
                "size": size,
                "t_cubes": t_cubes,
                "p_cubes": p_cubes,
                "models": len(truth),
                "cold_s": cold_seconds,
                "warm_restart_s": warm_seconds,
                "warm_restart_speedup": speedup,
                "store_hits": warm_cache.tier_counts["store-hit"],
                "store_corrupt": repro_runtime.STATS["store-corrupt"],
                "masks_verified_identical": True,
            })
            print(
                f"  n={size:2d} models={len(truth):5d} "
                f"cold={cold_seconds:.4f}s warm-restart={warm_seconds:.4f}s "
                f"({speedup:.1f}x)"
            )
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = saved_env
        repro_store.reset_active()
        shutil.rmtree(root, ignore_errors=True)
    return records


def run_telemetry_benchmark(sizes, model_count, seeds, reps=3,
                            baseline=None):
    """Telemetry leg: trace-on vs trace-off cost of :mod:`repro.obs`.

    Per (size, seed), one clause-family revise pipeline (SAT enumeration
    + sparse selection, a fresh ``BatchCache`` per rep so every rep pays
    the full compile) timed three ways:

    * trace off (``REPRO_TRACE`` unset — the production default): the
      ``span()`` sites must be no-ops, so this is the number that must
      stay within noise of the pre-telemetry engine;
    * trace on (a live JSONL sink): measures the full cost of span
      emission, event serialisation and histogram feeding;
    * against an optional *baseline* mapping (``"size:seed"`` → seconds
      measured on the pre-telemetry tree with the identical harness),
      recording the trace-off regression directly.

    Timings are CPU seconds (``time.process_time``, min over *reps*);
    masks are verified bit-identical between the traced and untraced
    runs, and the trace must parse back into a single well-formed tree.
    """
    import tempfile

    from repro import obs
    from repro.hardness import clause_family
    from repro.revision.batch import BatchCache, revise_many

    print(
        f"\ntelemetry: trace-on vs trace-off, clause family "
        f"({model_count} planted models), sizes {list(sizes)}"
    )
    records = []
    for size in sizes:
        for seed in seeds:
            workload = clause_family.build(
                size, model_count, model_count, seed=seed
            )
            pairs = [([workload.t_formula], workload.p_formula)]

            def timed(trace_path):
                best = None
                masks = None
                spans = 0
                for _ in range(reps):
                    obs.reset()
                    if trace_path:
                        open(trace_path, "w").close()  # fresh file per rep
                        obs.configure(trace_path)
                    cache = BatchCache()
                    gc.collect()
                    gc.disable()
                    start = time.process_time()
                    results = revise_many(pairs, "dalal", cache=cache)
                    elapsed = time.process_time() - start
                    gc.enable()
                    if trace_path:
                        spans = obs.REGISTRY.get("obs.trace.spans")
                        obs.close()
                    best = elapsed if best is None else min(best, elapsed)
                    masks = results[0].bit_model_set.masks
                return best, masks, spans

            off_seconds, off_masks, _ = timed(None)
            snapshot = obs.REGISTRY.snapshot()
            if any(name.startswith("span.") for name in
                   snapshot["histograms"]):
                raise AssertionError("trace-off run fed span histograms")
            handle, trace_path = tempfile.mkstemp(suffix=".jsonl")
            os.close(handle)
            try:
                on_seconds, on_masks, spans = timed(trace_path)
                events = obs.load_events(trace_path)
                roots, _, diagnostics = obs.build_forest(events)
            finally:
                os.unlink(trace_path)
            if on_masks != off_masks:
                raise AssertionError(
                    f"traced masks diverge at size={size} seed={seed}"
                )
            if diagnostics != {"unmatched_exits": 0, "unclosed": 0}:
                raise AssertionError(f"malformed trace: {diagnostics}")
            overhead_on = (
                (on_seconds - off_seconds) / off_seconds
                if off_seconds > 0 else None
            )
            record = {
                "size": size,
                "seed": seed,
                "models": model_count,
                "trace_off_s": off_seconds,
                "trace_on_s": on_seconds,
                "trace_on_overhead": overhead_on,
                "spans": spans,
                "trace_events": len(events),
                "trace_roots": len(roots),
                "masks_verified_identical": True,
            }
            base_key = f"{size}:{seed}"
            if baseline and base_key in baseline:
                base_seconds = float(baseline[base_key])
                record["pre_telemetry_baseline_s"] = base_seconds
                record["trace_off_vs_baseline"] = (
                    (off_seconds - base_seconds) / base_seconds
                    if base_seconds > 0 else None
                )
            print(
                f"  n={size:2d} seed={seed} off={off_seconds:.4f}s "
                f"on={on_seconds:.4f}s "
                f"(+{100.0 * (overhead_on or 0.0):.1f}%, "
                f"{spans} spans, {len(events)} events)"
                + (
                    f" vs-baseline={100.0 * record['trace_off_vs_baseline']:+.1f}%"
                    if "trace_off_vs_baseline" in record else ""
                )
            )
            records.append(record)
    return records


def summarise(records):
    """Per-operator per-size median speedups (where the old engine ran)."""
    summary = {}
    for record in records:
        if record["speedup"] is None:
            continue
        summary.setdefault(record["operator"], {}).setdefault(
            str(record["size"]), []
        ).append(record["speedup"])
    return {
        operator: {
            size: {
                "median_speedup": round(statistics.median(values), 2),
                "min_speedup": round(min(values), 2),
                "runs": len(values),
            }
            for size, values in by_size.items()
        }
        for operator, by_size in summary.items()
    }


def summarise_sharded(records):
    """Sharded-tier outcomes: head-to-head vs big-int below the cutoff,
    completion and speedup vs the retired engines above it."""
    head_to_head = {}
    pr2_speedups = {}
    large = {
        "completed": 0,
        "pr2_completed": 0,
        "pr2_timeouts": 0,
        "pr1_completed": 0,
        "pr1_timeouts": 0,
    }
    for record in records:
        if record["size"] < LARGE_SIZE_MIN:
            if record["sharded_s"] and record["sharded_s"] != record["new_s"]:
                head_to_head.setdefault(str(record["size"]), []).append(
                    record["new_s"] / record["sharded_s"]
                )
        else:
            large["completed"] += 1
            for mode in ("pr2", "pr1"):
                value = record[f"{mode}_s"]
                if isinstance(value, float):
                    large[f"{mode}_completed"] += 1
                elif value == "timeout":
                    large[f"{mode}_timeouts"] += 1
            if record["pr2_speedup"] is not None:
                pr2_speedups.setdefault(str(record["size"]), {}).setdefault(
                    record["operator"], []
                ).append(record["pr2_speedup"])
    return {
        "bigint_over_sharded_median_by_size": {
            size: round(statistics.median(values), 2)
            for size, values in head_to_head.items()
        },
        "pr2_over_batched_median": {
            size: {
                operator: round(statistics.median(values), 2)
                for operator, values in by_op.items()
            }
            for size, by_op in pr2_speedups.items()
        },
        "large_sizes": large,
    }


def load_trajectory(path: Path) -> dict:
    """The trajectory file: a ``runs`` list; PR 1's flat snapshot becomes
    its first entry so nothing recorded is ever dropped."""
    if path.exists():
        data = json.loads(path.read_text())
        if "runs" in data:
            return data
        first = dict(data)
        first.setdefault("label", "pr1-bitmask-engine")
        return {
            "benchmark": first.get("benchmark", "revision_perf"),
            "description": (
                "Perf trajectory for the six model-based operators; one "
                "entry per benchmarked engine generation, earliest first"
            ),
            "runs": [first],
        }
    return {
        "benchmark": "revision_perf",
        "description": (
            "Perf trajectory for the six model-based operators; one "
            "entry per benchmarked engine generation, earliest first"
        ),
        "runs": [],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="alphabet sizes to benchmark (the sharded tier serves 21-24)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS),
        help="workload seeds per size (first seed only above 20 letters)",
    )
    parser.add_argument(
        "--old-max-size", type=int, default=DEFAULT_OLD_MAX_SIZE,
        help="largest alphabet on which the frozenset engine is timed",
    )
    parser.add_argument(
        "--operators", nargs="+", default=list(OPERATORS),
        choices=list(OPERATORS),
        help="operator subset to benchmark",
    )
    parser.add_argument(
        "--pr1-timeout", type=float, default=DEFAULT_PR1_TIMEOUT,
        help="seconds allowed to the pre-sharding engine at sharded sizes",
    )
    parser.add_argument(
        "--pr2-timeout", type=float, default=DEFAULT_PR2_TIMEOUT,
        help="seconds allowed to the per-model sharded engine (batched "
             "pointwise kernels disabled) at sharded sizes",
    )
    parser.add_argument(
        "--spot-check-size", type=int, default=None,
        help="verify sharded vs SAT fallback at this (sparse) size",
    )
    parser.add_argument(
        "--sparse-sizes", type=int, nargs="+", default=None, metavar="SIZE",
        help="also run the bounded-density sparse-tier workload at these "
             "alphabet sizes (e.g. 26 32 40; past the shard cutoff the "
             "sharded engine cannot compile and the sparse tier serves)",
    )
    parser.add_argument(
        "--sparse-cubes", type=int, nargs=2, default=list(DEFAULT_SPARSE_CUBES),
        metavar=("T_CUBES", "P_CUBES"),
        help="fixed model density of the sparse workload (T and P cube "
             "counts, constant across sizes)",
    )
    parser.add_argument(
        "--batch", type=int, nargs="*", default=None, metavar="SIZE",
        help="also run the batched workload (optionally at these sizes)",
    )
    parser.add_argument(
        "--store-sizes", type=int, nargs="+", default=None, metavar="SIZE",
        help="also run the artifact-store leg (cold compile vs warm "
             "restart off disk) at these alphabet sizes (e.g. 32 40)",
    )
    parser.add_argument(
        "--cdcl-sizes", type=int, nargs="+", default=None, metavar="SIZE",
        help="also run the clause-heavy CDCL workload "
             "(repro.hardness.clause_family) at these alphabet sizes, "
             "A/Bing clause learning against the chronological search "
             "(REPRO_CDCL=0) with masks verified against ground truth",
    )
    parser.add_argument(
        "--cdcl-models", type=int, default=448,
        help="planted model count of the CDCL workload (T and P)",
    )
    parser.add_argument(
        "--cdcl-seeds", type=int, nargs="+", default=[7, 11, 13],
        help="workload seeds for the CDCL clause family",
    )
    parser.add_argument(
        "--telemetry-sizes", type=int, nargs="+", default=None,
        metavar="SIZE",
        help="also run the telemetry overhead leg (trace-on vs trace-off "
             "revise on the clause family) at these alphabet sizes "
             "(e.g. 32 40)",
    )
    parser.add_argument(
        "--telemetry-models", type=int, default=64,
        help="planted model count of the telemetry-leg workload",
    )
    parser.add_argument(
        "--telemetry-seeds", type=int, nargs="+", default=[7],
        help="workload seeds for the telemetry leg",
    )
    parser.add_argument(
        "--telemetry-baseline", type=Path, default=None,
        help="JSON file mapping 'size:seed' to pre-telemetry trace-off "
             "seconds (same harness run on the previous tree); recorded "
             "per record as the trace-off regression",
    )
    parser.add_argument(
        "--governance", action="store_true",
        help="also measure the repro.runtime checkpoint overhead on the "
             "CDCL clause-family leg (bare vs inside a generous Budget; "
             "uses the --cdcl-sizes/--cdcl-models/--cdcl-seeds workload)",
    )
    parser.add_argument(
        "--label", default="pr5-allsat-enumerator",
        help="trajectory label for this run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: tiny size cap, one seed",
    )
    parser.add_argument(
        "--json-path", type=Path, default=JSON_PATH,
        help="where to write the machine-readable results",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.sizes = [6]
        args.seeds = [0]
        if args.batch is not None and not args.batch:
            args.batch = [6]

    records = run_benchmark(
        args.sizes, args.seeds, args.old_max_size, args.pr1_timeout,
        args.pr2_timeout, args.operators,
    )
    summary = summarise(records)
    sharded_summary = summarise_sharded(records)

    payload = {
        "label": args.label,
        "benchmark": "revision_perf",
        "description": (
            "Six model-based operators: production dispatch (big-int + "
            "sharded tiers) vs forced-sharded, the pre-sharding engine "
            "under a timeout, and the retained frozenset engine"
        ),
        "workload": {
            **WORKLOAD_SPEC,
            "sizes": args.sizes,
            "seeds": args.seeds,
            "old_engine_max_size": args.old_max_size,
            "pr1_timeout_s": args.pr1_timeout,
            "pr2_timeout_s": args.pr2_timeout,
            "operators": args.operators,
        },
        "engines": {
            "old": "repro.revision.reference (frozenset models, all-pairs min-subset)",
            "pr1": "big-int tables <= 20 letters, SAT + mask loops above (shard tier disabled)",
            "pr2": "sharded tier with per-T-model sweeps (batched pointwise kernels disabled)",
            "new": (
                "repro.revision via bitmodels + shards + sparse (big-int "
                "<= 20, sharded 21-26 with batched pointwise kernels + "
                "REPRO_PARALLEL fan-out, density-aware sparse model-set "
                "tier past the shard cutoff)"
            ),
            "sharded": "shard tier forced at every size (numpy uint64 bitplanes)",
            "sparse": (
                "sorted model-mask carriers (repro.logic.sparse): "
                "density-proportional pair kernels, any alphabet size, "
                "model counts bounded by REPRO_SPARSE_MAX_MODELS"
            ),
            "allsat": (
                "incremental AllSAT enumeration (repro.sat.allsat): "
                "resume-don't-restart CDCL search (first-UIP learning, "
                "VSIDS, floor-clamped backjumps; REPRO_CDCL=0 restores "
                "the chronological PR 5 search) with cube generalization, "
                "component splitting and the REPRO_PARALLEL fan-out feeds "
                "the SAT tier; REPRO_ALLSAT=0 restores the blocking-"
                "clause loop (the A/Bs in sparse_tier.enumeration and "
                "cdcl_allsat)"
            ),
        },
        "models_verified_identical": all(
            r["models_equal"] for r in records if r["models_equal"] is not None
        ),
        "results": records,
        "summary": summary,
        "sharded_summary": sharded_summary,
    }
    if args.spot_check_size is not None:
        payload["sharded_vs_sat_fallback"] = run_spot_check(
            args.spot_check_size, args.operators
        )
    if args.sparse_sizes is not None:
        payload["sparse_tier"] = run_sparse_benchmark(
            args.sparse_sizes, args.sparse_cubes[0], args.sparse_cubes[1],
            args.operators,
        )
    if args.batch is not None:
        batch_sizes = args.batch or [12, 14]
        payload["batch"] = run_batch_benchmark(batch_sizes, args.operators)
    if args.store_sizes is not None:
        payload["artifact_store"] = run_store_benchmark(
            args.store_sizes, args.sparse_cubes[0], args.sparse_cubes[1],
        )
    if args.cdcl_sizes is not None:
        payload["cdcl_allsat"] = run_cdcl_benchmark(
            args.cdcl_sizes, args.cdcl_models, args.cdcl_seeds,
            reps=1 if args.quick else 2,
        )
    if args.telemetry_sizes is not None:
        baseline = None
        if args.telemetry_baseline is not None:
            with open(args.telemetry_baseline) as handle:
                baseline = json.load(handle)
        payload["telemetry"] = run_telemetry_benchmark(
            args.telemetry_sizes, args.telemetry_models,
            args.telemetry_seeds,
            reps=1 if args.quick else 3,
            baseline=baseline,
        )
    if args.governance:
        if args.cdcl_sizes is None:
            parser.error("--governance needs --cdcl-sizes for its workload")
        payload["governance"] = run_governance_benchmark(
            args.cdcl_sizes, args.cdcl_models, args.cdcl_seeds,
            reps=1 if args.quick else 3,
        )

    trajectory = load_trajectory(args.json_path)
    trajectory["runs"].append(payload)
    # Crash-safe append: the trajectory is an accumulating record across
    # PRs, so an interrupted run must never truncate it — write the whole
    # file to a temp sibling, fsync, then atomically swap it in.
    tmp_path = args.json_path.with_name(
        f"{args.json_path.name}.tmp.{os.getpid()}"
    )
    with open(tmp_path, "w") as handle:
        handle.write(json.dumps(trajectory, indent=2) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, args.json_path)
    print(f"\nwrote {args.json_path} ({len(trajectory['runs'])} runs)")

    rows = []
    for operator in args.operators:
        for size in args.sizes:
            matching = [
                r for r in records
                if r["operator"] == operator and r["size"] == size
            ]
            if not matching:
                continue
            cell = summary.get(operator, {}).get(str(size))
            new_median = statistics.median(r["new_s"] for r in matching)
            old_runs = [r["old_s"] for r in matching if r["old_s"] is not None]
            retired_cells = []
            for field in ("pr2_s", "pr1_s"):
                runs = [r[field] for r in matching if r[field] is not None]
                if runs:
                    retired_cells.append("/".join(
                        f"{r:.2f}" if isinstance(r, float) else "timeout"
                        for r in runs
                    ))
                else:
                    retired_cells.append("-")
            rows.append([
                operator,
                size,
                f"{statistics.median(old_runs):.4f}" if old_runs else "-",
                f"{new_median:.4f}",
                *retired_cells,
                f"{cell['median_speedup']:.1f}x" if cell else "-",
            ])
    lines = [
        "E-perf: model-based revision across engine tiers",
        f"(median wall seconds over seeds {args.seeds}; "
        f"frozenset engine capped at {args.old_max_size} letters; "
        f"PR2/PR1 engines timed out at {args.pr2_timeout:.0f}s/"
        f"{args.pr1_timeout:.0f}s on sharded sizes)",
        "",
    ]
    lines += format_table(
        ["operator", "letters", "old s", "new s", "pr2 s", "pr1 s", "speedup"],
        rows,
    )
    if args.sparse_sizes is not None:
        sparse_payload = payload["sparse_tier"]
        lines += [
            "",
            "Sparse tier: bounded-density workload "
            f"({args.sparse_cubes[0]}x{args.sparse_cubes[1]} models, fixed "
            "across sizes; select = selection only, sharded/masks = same "
            "selection on the other tiers)",
            "",
        ]
        lines += format_table(
            ["operator", "letters", "select s", "sharded s", "masks s",
             "end-to-end s", "pr4 end s", "tier"],
            [
                [
                    r["operator"],
                    r["size"],
                    f"{r['select_s']:.4f}",
                    (
                        f"{r['sharded_select_s']:.4f}"
                        if isinstance(r["sharded_select_s"], float)
                        else "cannot compile"
                    ),
                    f"{r['masks_select_s']:.4f}",
                    f"{r['new_s']:.2f}",
                    (
                        f"{r['pr4_end_s']:.2f}"
                        if r.get("pr4_end_s") is not None else "-"
                    ),
                    r["tier"],
                ]
                for r in sparse_payload["results"]
            ],
        )
        if sparse_payload["enumeration"]:
            lines += [
                "",
                "Enumeration A/B (incremental AllSAT vs blocking-clause "
                "loop, identical masks):",
                "",
            ]
            lines += format_table(
                ["letters", "models", "allsat s", "blocking s", "speedup",
                 "cubes", "resumes"],
                [
                    [
                        r["size"],
                        r["models"],
                        f"{r['allsat_compile_s']:.3f}",
                        f"{r['blocking_compile_s']:.3f}",
                        (
                            f"{r['enum_speedup']:.1f}x"
                            if r["enum_speedup"] is not None else "n/a"
                        ),
                        r["cubes"],
                        r["resumes"],
                    ]
                    for r in sparse_payload["enumeration"]
                ],
            )
    if args.json_path == JSON_PATH:
        # Only official trajectory runs refresh the checked-in table;
        # smoke runs pointed at a scratch JSON would otherwise clobber it
        # with a 6-row artifact.
        write_result("revision_perf.txt", lines)
    else:
        print()
        print("\n".join(lines))
    return payload


if __name__ == "__main__":
    main()
