"""E-perf — bitmask engine vs. frozenset engine on the six model-based operators.

Times the full revision pipeline (model enumeration + selection) of both
engines on the ``random_tp_pair`` workload across alphabet sizes, verifies
the two engines return *identical* model sets on every timed instance, and
writes:

* ``BENCH_revision_perf.json`` (repo root) — machine-readable trajectory
  data for later PRs: per-instance wall times, per-operator per-size median
  speedups, and the workload parameters;
* ``benchmarks/results/revision_perf.txt`` — the human-readable table.

The old engine is :func:`repro.revision.reference.reference_revise` (the
retained frozenset pipeline: per-interpretation evaluation, all-pairs
``min⊆``); the new engine is the production :func:`repro.revision.revise`
on the bitmask model-set engine.  Clause counts scale with the alphabet so
model sets stay in the realistic hundreds instead of saturating ``2^n``;
the frozenset engine is only timed up to ``--old-max-size`` (its Winslett
and Satoh selections are quadratic in the model count and become minutes
per instance beyond 12 letters).

Run ``python benchmarks/bench_revision_perf.py`` from the repo root
(``--quick`` for the CI smoke cap).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _util import format_table, random_tp_pair, write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_revision_perf.json"

OPERATORS = ("winslett", "borgida", "forbus", "satoh", "dalal", "weber")

DEFAULT_SIZES = (6, 8, 10, 12, 14)
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_OLD_MAX_SIZE = 12


# Workload shape.  WORKLOAD_SPEC goes into the JSON verbatim — keep the
# strings in lockstep with the functions right below them, so later PRs can
# regenerate comparable numbers from the recorded metadata.
WORKLOAD_SPEC = {
    "generator": "random_tp_pair",
    "t_clauses": "max(3, (2 * size) // 3)",
    "p_clauses": "max(2, size // 3)",
    "model_count_floor": (
        "1 << max(0, size - 4); candidate seeds scanned from seed * 1000 "
        "until both T and P reach the floor"
    ),
}


def _t_clauses(size: int) -> int:
    return max(3, (2 * size) // 3)


def _p_clauses(size: int) -> int:
    return max(2, size // 3)


def _model_floor(size: int) -> int:
    return 1 << max(0, size - 4)


def _workload(size: int, seed: int):
    """A non-trivial (T, P) pair over ``size`` letters.

    Clause counts scale with the alphabet, and candidate seeds (starting at
    ``seed * 1000``) are scanned until both model sets reach the floor: the
    random draw is bimodal (a 1-clause theory saturates ``2^n``, a
    clause-heavy one leaves a handful of models), and the floor pins the
    benchmark to the dense regime that the paper's enumeration semantics —
    and the engines under comparison — actually have to work in.
    """
    from repro.sat import bit_models

    letters = [f"v{i:02d}" for i in range(size)]
    floor = _model_floor(size)
    candidate = seed * 1000
    while True:
        t, p = random_tp_pair(
            candidate,
            letters,
            t_clauses=_t_clauses(size),
            p_clauses=_p_clauses(size),
        )
        if (
            len(bit_models(t, letters)) >= floor
            and len(bit_models(p, letters)) >= floor
        ):
            return t, p
        candidate += 1


def run_benchmark(sizes, seeds, old_max_size):
    from repro.logic import Theory
    from repro.revision import reference_revise, revise
    from repro.sat import bit_models

    records = []
    for size in sizes:
        for seed in seeds:
            t, p = _workload(size, seed)
            alphabet = sorted(t.variables() | p.variables())
            t_count = len(bit_models(t, alphabet))
            p_count = len(bit_models(p, alphabet))
            for name in OPERATORS:
                start = time.perf_counter()
                result = revise(t, p, name)
                new_seconds = time.perf_counter() - start

                record = {
                    "size": size,
                    "seed": seed,
                    "operator": name,
                    "t_models": t_count,
                    "p_models": p_count,
                    "result_models": len(result.model_set),
                    "new_s": new_seconds,
                    "old_s": None,
                    "speedup": None,
                    "models_equal": None,
                }
                if size <= old_max_size:
                    start = time.perf_counter()
                    _, reference_set = reference_revise(Theory([t]), p, name)
                    old_seconds = time.perf_counter() - start
                    record["old_s"] = old_seconds
                    record["speedup"] = (
                        old_seconds / new_seconds if new_seconds > 0 else float("inf")
                    )
                    record["models_equal"] = result.model_set == reference_set
                    if not record["models_equal"]:
                        raise AssertionError(
                            f"engine mismatch: size={size} seed={seed} op={name}"
                        )
                records.append(record)
                shown = (
                    f"{record['speedup']:.1f}x" if record["speedup"] else "old skipped"
                )
                print(
                    f"  n={size:2d} seed={seed} {name:<9} "
                    f"new={new_seconds:.4f}s ({shown})"
                )
    return records


def summarise(records):
    """Per-operator per-size median speedups (where the old engine ran)."""
    summary = {}
    for record in records:
        if record["speedup"] is None:
            continue
        summary.setdefault(record["operator"], {}).setdefault(
            str(record["size"]), []
        ).append(record["speedup"])
    return {
        operator: {
            size: {
                "median_speedup": round(statistics.median(values), 2),
                "min_speedup": round(min(values), 2),
                "runs": len(values),
            }
            for size, values in by_size.items()
        }
        for operator, by_size in summary.items()
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="alphabet sizes to benchmark",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS),
        help="workload seeds per size",
    )
    parser.add_argument(
        "--old-max-size", type=int, default=DEFAULT_OLD_MAX_SIZE,
        help="largest alphabet on which the frozenset engine is timed",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: tiny size cap, one seed",
    )
    parser.add_argument(
        "--json-path", type=Path, default=JSON_PATH,
        help="where to write the machine-readable results",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.sizes = [6]
        args.seeds = [0]

    records = run_benchmark(args.sizes, args.seeds, args.old_max_size)
    summary = summarise(records)

    payload = {
        "benchmark": "revision_perf",
        "description": (
            "Six model-based operators, bitmask engine vs retained frozenset "
            "engine, random_tp_pair workload with size-scaled clause counts"
        ),
        "workload": {
            **WORKLOAD_SPEC,
            "sizes": args.sizes,
            "seeds": args.seeds,
            "old_engine_max_size": args.old_max_size,
        },
        "engines": {
            "old": "repro.revision.reference (frozenset models, all-pairs min-subset)",
            "new": "repro.revision via repro.logic.bitmodels (bit-parallel tables)",
        },
        "models_verified_identical": all(
            r["models_equal"] for r in records if r["models_equal"] is not None
        ),
        "results": records,
        "summary": summary,
    }
    args.json_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.json_path}")

    rows = []
    for operator in OPERATORS:
        for size in args.sizes:
            cell = summary.get(operator, {}).get(str(size))
            matching = [
                r for r in records
                if r["operator"] == operator and r["size"] == size
            ]
            new_median = statistics.median(r["new_s"] for r in matching)
            old_runs = [r["old_s"] for r in matching if r["old_s"] is not None]
            rows.append([
                operator,
                size,
                f"{statistics.median(old_runs):.4f}" if old_runs else "-",
                f"{new_median:.4f}",
                f"{cell['median_speedup']:.1f}x" if cell else "-",
            ])
    lines = [
        "E-perf: model-based revision, frozenset engine vs bitmask engine",
        f"(median wall seconds over seeds {args.seeds}; "
        f"old engine capped at {args.old_max_size} letters)",
        "",
    ]
    lines += format_table(
        ["operator", "letters", "old s", "new s", "speedup"], rows
    )
    write_result("revision_perf.txt", lines)
    return payload


if __name__ == "__main__":
    main()
