"""E10 (ablation) — the offline/online split of the paper's introduction.

Deciding ``T * P |= Q`` can be done (a) directly against the exact
semantics (model enumeration — exponential in the alphabet) or (b) by
compiling a compact ``T'`` once and running SAT-based entailment per query.
This ablation times both routes as the alphabet grows, exhibiting the
crossover that motivates compilation.
"""

import pytest

from repro.compact import dalal_compact
from repro.logic import land, lnot, lor, parse, var
from repro.revision import revise

from _util import format_table, write_result


def _instance(n: int):
    """T = x0 & ... & x(n-1);  P = ~x0 | ~x1;  query = x2."""
    letters = [f"x{i}" for i in range(n)]
    t = land(*(var(x) for x in letters))
    p = parse("~x0 | ~x1")
    q = var("x2")
    return t, p, q


def test_regenerate_pipeline_table():
    import time

    lines = ["E10: query answering — exact semantics vs compiled T'", ""]
    rows = []
    for n in (4, 8, 12, 16, 18):
        t, p, q = _instance(n)

        start = time.perf_counter()
        result = revise(t, p, "dalal")
        answer_semantics = result.entails(q)
        semantics_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        rep = dalal_compact(t, p, k=1)
        compile_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        answer_compiled = rep.entails(q)
        query_ms = (time.perf_counter() - start) * 1000

        assert answer_semantics == answer_compiled
        rows.append(
            [n, f"{semantics_ms:.1f}", f"{compile_ms:.1f}", f"{query_ms:.1f}"]
        )
    lines += format_table(
        ["n", "semantics (ms)", "compile once (ms)", "query T' (ms)"], rows
    )
    lines.append("")
    lines.append(
        "Exact semantics costs 2^n model enumeration per *question*; the"
        " compiled route pays the construction once and answers each query"
        " with one entailment test — the paper's two-subtask argument."
    )
    write_result("query_time.txt", lines)


@pytest.mark.parametrize("n", [6, 10])
def test_bench_semantics_route(benchmark, n):
    t, p, q = _instance(n)
    answer = benchmark.pedantic(
        lambda: revise(t, p, "dalal").entails(q), rounds=3, iterations=1
    )
    assert answer


@pytest.mark.parametrize("n", [6, 10, 14])
def test_bench_compiled_route(benchmark, n):
    t, p, q = _instance(n)
    rep = dalal_compact(t, p, k=1)
    answer = benchmark(lambda: rep.entails(q))
    assert answer
