"""Shared helpers for the benchmark harness.

Every bench module regenerates one paper artifact (table / figure /
worked example), prints the rows in the paper's shape and persists them to
``benchmarks/results/`` so ``EXPERIMENTS.md`` can reference stable outputs.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, List, Sequence

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, lines: Iterable[str]) -> Path:
    """Persist (and echo) one experiment's output table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print()
    print(text)
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Fixed-width text table (paper-style)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in rows)
    return lines


def random_tp_pair(
    seed: int,
    letters: Sequence[str],
    p_letters: Sequence[str] | None = None,
    t_clauses: int = 3,
    p_clauses: int = 2,
):
    """A random satisfiable (T, P) pair — the generic workload generator.

    ``t_clauses`` / ``p_clauses`` bound the clause counts (drawn uniformly
    from ``1..bound``); the defaults match the historical workload, while
    the perf benchmark scales them with the alphabet so model sets stay in
    the realistic hundreds rather than saturating ``2^n``.
    """
    from repro.logic import land, lnot, lor, var
    from repro.sat import is_satisfiable

    rng = random.Random(seed)

    def formula(pool, max_clauses):
        parts = []
        for _ in range(rng.randint(1, max_clauses)):
            lits = []
            for _ in range(rng.randint(1, 3)):
                name = rng.choice(list(pool))
                atom = var(name)
                lits.append(atom if rng.random() < 0.5 else lnot(atom))
            parts.append(lor(*lits))
        return land(*parts)

    while True:
        t = formula(letters, t_clauses)
        p = formula(p_letters or letters, p_clauses)
        if is_satisfiable(t) and is_satisfiable(p):
            return t, p
