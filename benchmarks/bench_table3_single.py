"""E3/E4 — Table 3: compactability of a single revision.

Regenerates the YES/NO grid of Table 3 from live code:

* YES cells — build the paper's construction, certify equivalence against
  ground truth on a small instance, and measure size growth across
  increasing |T| (polynomial shape);
* NO cells — measure the observable blow-up on the proof families: the
  possible-world count of the GFUV examples and the exact minimal-DNF cost
  (Quine-McCluskey/Petrick) of the revised base on the reduction families,
  contrasted with the query-compact representation size on the same
  instances (the query-YES / logical-NO gap for Dalal and Weber).
"""

import pytest

from repro.compact import (
    BOUNDED_CONSTRUCTIONS,
    dalal_compact,
    is_logically_equivalent_to,
    is_query_equivalent_to,
    weber_compact,
    widtio_compact,
)
from repro.hardness import dalal_weber_family, gfuv_family, nebel_family
from repro.logic import Theory, land, lnot, parse, var
from repro.minimize import TruthTable, minimal_dnf_cost
from repro.revision import revise
from repro.threesat import pi_max

from _util import format_table, random_tp_pair, write_result

#: The paper's Table 3 (operator -> four YES/NO cells:
#: (general-logical, general-query, bounded-logical, bounded-query)).
PAPER_TABLE3 = {
    "gfuv/nebel": ("NO", "NO", "NO", "NO"),
    "winslett": ("NO", "NO", "YES", "YES"),
    "borgida": ("NO", "NO", "YES", "YES"),
    "forbus": ("NO", "NO", "YES", "YES"),
    "satoh": ("NO", "NO", "YES", "YES"),
    "dalal": ("NO", "YES", "YES", "YES"),
    "weber": ("NO", "YES", "YES", "YES"),
    "widtio": ("YES", "YES", "YES", "YES"),
}


def _growing_instance(n: int):
    """T = x0 & ... & x(n-1), P = ~x0 | ~x1 — |V(P)| fixed at 2."""
    letters = [f"x{i}" for i in range(n)]
    return land(*(var(x) for x in letters)), parse("~x0 | ~x1")


def test_table3_grid():
    """Print the paper's Table 3 verbatim (with theorem references)."""
    refs = {
        "gfuv/nebel": ("Th 3.7", "Th 3.1", "Th 4.1", "Th 4.1"),
        "winslett": ("Th 3.7", "Th 3.2", "Prop 4.3", "Prop 4.3"),
        "borgida": ("Th 3.7", "Th 3.2", "Cor 4.4", "Cor 4.4"),
        "forbus": ("Th 3.7", "Th 3.3", "Th 4.5", "Th 4.5"),
        "satoh": ("Th 3.7", "Th 3.2", "Th 4.6", "Th 4.6"),
        "dalal": ("Th 3.6", "Th 3.4", "Th 4.6", "Th 3.4/4.6"),
        "weber": ("Th 3.6", "Th 3.5", "Th 4.6", "Th 3.5/4.6"),
        "widtio": ("def.", "def.", "def.", "def."),
    }
    lines = ["E3: Table 3 — is the revised knowledge base compactable?", ""]
    rows = []
    for op, cells in PAPER_TABLE3.items():
        annotated = [f"{cell} ({ref})" for cell, ref in zip(cells, refs[op])]
        rows.append([op] + annotated)
    lines += format_table(
        ["formalism", "general/logical", "general/query", "bounded/logical", "bounded/query"],
        rows,
    )
    write_result("table3_grid.txt", lines)


def test_table3_yes_cells_certified_and_sized():
    lines = ["E3: Table 3 YES cells — certification + size growth", ""]

    # --- certification on a random instance --------------------------------
    t, p = random_tp_pair(3, ["a", "b", "c", "d"], p_letters=["a", "b"])
    rows = []
    rep = dalal_compact(t, p)
    ok = is_query_equivalent_to(rep, revise(t, p, "dalal"))
    rows.append(["dalal", "general", "query", rep.size(), "ok" if ok else "FAIL"])
    assert ok

    rep = weber_compact(t, p)
    ok = is_query_equivalent_to(rep, revise(t, p, "weber"))
    rows.append(["weber", "general", "query", rep.size(), "ok" if ok else "FAIL"])
    assert ok

    theory = Theory.parse_many("a", "b", "c & d")
    rep = widtio_compact(theory, p)
    ok = is_logically_equivalent_to(rep, revise(theory, p, "widtio"))
    rows.append(["widtio", "general", "logical", rep.size(), "ok" if ok else "FAIL"])
    assert ok

    for name in sorted(BOUNDED_CONSTRUCTIONS):
        rep = BOUNDED_CONSTRUCTIONS[name](t, p)
        ok = is_logically_equivalent_to(rep, revise(t, p, name))
        rows.append([name, "bounded", "logical", rep.size(), "ok" if ok else "FAIL"])
        assert ok, name
    lines += format_table(["operator", "case", "equivalence", "|T'|", "verified"], rows)

    # --- size growth across |T| ----------------------------------------------
    lines.append("")
    lines.append("Size of T' as |T| grows (|V(P)| fixed at 2) — polynomial shape:")
    ns = (4, 8, 16, 32)
    growth_rows = []
    fixed_measures = {
        "dalal": {"k": 1},
        "satoh": {"delta": [frozenset({"x0"}), frozenset({"x1"})]},
        "weber": {"omega": {"x0", "x1"}},
    }
    for name in ("dalal (Thm 3.4)", "weber (Thm 3.5)"):
        sizes = []
        for n in ns:
            t_n, p_n = _growing_instance(n)
            if name.startswith("dalal"):
                sizes.append(dalal_compact(t_n, p_n, k=1).size())
            else:
                sizes.append(weber_compact(t_n, p_n, omega={"x0", "x1"}).size())
        growth_rows.append([name] + sizes)
    for name in sorted(BOUNDED_CONSTRUCTIONS):
        sizes = []
        for n in ns:
            t_n, p_n = _growing_instance(n)
            kwargs = fixed_measures.get(name, {})
            sizes.append(BOUNDED_CONSTRUCTIONS[name](t_n, p_n, **kwargs).size())
        growth_rows.append([f"{name} (bounded)"] + sizes)
    lines += format_table(["construction"] + [f"n={n}" for n in ns], growth_rows)

    # Polynomial shape check: last column must stay far below exponential
    # extrapolation of the first two.
    for row in growth_rows:
        s1, s2, s4 = row[1], row[2], row[4]
        assert s4 < max(4 * (s2 - s1) + s2 * 4, 64), row[0]
    write_result("table3_yes_cells.txt", lines)


def test_table3_no_cells_blowup():
    lines = ["E4: Table 3 NO cells — measured blow-up on the proof families", ""]

    # --- GFUV: possible-world count and explicit representation size --------
    lines.append("GFUV on Nebel's family (T1 = {x_i, y_i}, P1 = ∧ x_i≢y_i):")
    rows = []
    for m in (1, 2, 3, 4, 6, 8, 10):
        worlds = nebel_family.expected_world_count(m)
        explicit = nebel_family.explicit_representation_size(m)
        input_size = 2 * m + 2 * m  # |T1| + |P1| variable occurrences
        rows.append([m, input_size, worlds, explicit])
    lines += format_table(["m", "|T|+|P|", "|W(T,P)|", "explicit |T'|"], rows)
    # Exponential shape: worlds double with m.
    assert nebel_family.expected_world_count(10) == 1024

    # --- minimal-DNF growth for the model-based NO cells ----------------------
    # Theorem 3.1/3.2 family (single-model T): minimal two-level cost of the
    # ground-truth result under Satoh and Winslett as the clause universe
    # grows, against the input size.
    lines.append("")
    lines.append(
        "Satoh / Winslett on the Theorem 3.1 family (minimal-DNF cost of T*P):"
    )
    rows = []
    universe_pool = pi_max(3)
    for u in (1, 2, 3):
        universe = tuple(universe_pool[:u])
        family = gfuv_family.build(3, universe)
        t_formula = family.theory.conjunction()
        alphabet = sorted(
            t_formula.variables() | family.p_formula.variables()
        )
        row = [u, t_formula.size() + family.p_formula.size()]
        for op in ("satoh", "winslett"):
            result = revise(t_formula, family.p_formula, op)
            table = TruthTable.of_models(result.model_set, alphabet)
            terms, literals = minimal_dnf_cost(table)
            row.append(f"{terms}t/{literals}l")
        rows.append(row)
    lines += format_table(
        ["|universe|", "|T|+|P|", "satoh minDNF", "winslett minDNF"], rows
    )

    # --- Dalal/Weber: the query-YES / logical-NO gap --------------------------
    # The logical-equivalence blow-up is conditional (NP ⊆ P/poly), so no
    # unconditional growth is observable at toy sizes; the *measurable*
    # content is (a) the query representation stays linear while (b) the
    # logical target (minimal DNF of the exact result) jumps once the
    # universe contains unsatisfiable clause subsets — the smallest such
    # universe over 3 atoms is the full pi_max(3) (u = 8: every assignment
    # falsifies exactly one clause).
    lines.append("")
    lines.append(
        "Dalal on the Theorem 3.6 family: query-compact size vs minimal-DNF cost"
    )
    rows = []
    for u in (2, 4, 8):
        universe = tuple(universe_pool[:u])
        family = dalal_weber_family.build(3, universe)
        query_rep = dalal_compact(family.t_formula, family.p_formula)
        result = revise(family.t_formula, family.p_formula, "dalal")
        alphabet = sorted(
            family.t_formula.variables() | family.p_formula.variables()
        )
        table = TruthTable.of_models(result.model_set, alphabet)
        terms, literals = minimal_dnf_cost(table)
        rows.append(
            [u, family.t_formula.size() + family.p_formula.size(),
             query_rep.size(), f"{terms}t/{literals}l"]
        )
    lines += format_table(
        ["|universe|", "|T|+|P|", "query |T'| (Thm 3.4)", "logical minDNF"], rows
    )
    # The u=8 row must show the jump in the logical target.
    assert int(rows[-1][3].split("t")[0]) > int(rows[0][3].split("t")[0])
    write_result("table3_no_cells.txt", lines)


def test_bench_dalal_compact_construction(benchmark):
    t, p = _growing_instance(12)
    rep = benchmark(lambda: dalal_compact(t, p, k=1))
    assert rep.size() > 0


def test_bench_weber_compact_construction(benchmark):
    t, p = _growing_instance(12)
    rep = benchmark(lambda: weber_compact(t, p, omega={"x0", "x1"}))
    assert rep.size() > 0


@pytest.mark.parametrize("name", sorted(BOUNDED_CONSTRUCTIONS))
def test_bench_bounded_construction(benchmark, name):
    t, p = _growing_instance(8)
    kwargs = {
        "dalal": {"k": 1},
        "satoh": {"delta": [frozenset({"x0"}), frozenset({"x1"})]},
        "weber": {"omega": {"x0", "x1"}},
    }.get(name, {})
    rep = benchmark(lambda: BOUNDED_CONSTRUCTIONS[name](t, p, **kwargs))
    assert rep.size() > 0
